#include "planner/rank_cube_db.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/stopwatch.h"
#include "func/score_expr.h"
#include "planner/cost_model.h"

namespace rankcube {

std::string DbStats::ToString() const {
  std::ostringstream os;
  os << "rows=" << rows << "\n"
     << "live_rows=" << live_rows << "\n"
     << "epoch=" << epoch << "\n"
     << "compacted_epoch=" << compacted_epoch << "\n"
     << "pending_inserts=" << pending_inserts << "\n"
     << "pending_deletes=" << pending_deletes << "\n"
     << "engines_cataloged=" << engines_cataloged << "\n"
     << "engines_built=" << engines_built << "\n"
     << "construction_pages=" << construction_pages << "\n"
     << "queries_executed=" << queries_executed << "\n"
     << "query_failures=" << query_failures << "\n"
     << "pages_logical=" << pages_logical << "\n"
     << "pages_charged=" << pages_charged << "\n"
     << "pages_device=" << pages_device << "\n"
     << "cache_hit_rate=" << cache_hit_rate << "\n"
     << "cache_hits=" << cache_hits << "\n"
     << "cache_reuse_hits=" << cache_reuse_hits << "\n"
     << "cache_misses=" << cache_misses << "\n"
     << "cache_entries=" << cache_entries << "\n"
     << "cache_bytes=" << cache_bytes << "\n"
     << "cache_max_bytes=" << cache_max_bytes << "\n"
     << "cache_evictions=" << cache_evictions << "\n"
     << "cache_invalidations=" << cache_invalidations << "\n"
     << "durable=" << (durable ? 1 : 0) << "\n"
     << "read_only=" << (read_only ? 1 : 0) << "\n";
  if (durable) {
    if (!degraded_reason.empty()) {
      os << "degraded_reason=" << degraded_reason << "\n";
    }
    os << "checkpoint_epoch=" << checkpoint_epoch << "\n"
       << "checkpoint_generation=" << checkpoint_generation << "\n"
       << "wal_records=" << wal_records << "\n"
       << "wal_bytes=" << wal_bytes << "\n"
       << "backing_reads=" << backing_reads << "\n"
       << "backing_corruptions=" << backing_corruptions << "\n"
       << "recovered_records=" << recovered_records << "\n"
       << "recovery_ms=" << recovery_ms << "\n";
  }
  for (const auto& [name, f] : freshness) {
    os << "freshness." << name << "=" << f.built_epoch << "/" << f.table_epoch
       << "+" << f.pending_inserts << "-" << f.pending_deletes << "\n";
  }
  return os.str();
}

RankCubeDb::RankCubeDb(Table table, Options options)
    : table_(std::move(table)),
      store_(options.store),
      stats_(TableStats::Compute(table_, store_.page_size())),
      options_(std::move(options)),
      planner_(options_.planner),
      cache_(options_.cache),
      feedback_(options_.feedback),
      build_io_(&store_) {
  std::vector<std::string> names = options_.engines.empty()
                                       ? EngineRegistry::Global().Keys()
                                       : options_.engines;
  for (const std::string& name : names) {
    catalog_.Put(PredictStructureInfo(name, stats_, options_.build));
  }
}

Result<std::unique_ptr<RankCubeDb>> RankCubeDb::Open(Table seed,
                                                     Options options) {
  if (options.durability.data_dir.empty()) {
    return Status::InvalidArgument(
        "RankCubeDb::Open needs options.durability.data_dir (use the "
        "constructor for an ephemeral db)");
  }
  auto opened = DurabilityManager::Open(options.durability, seed);
  if (!opened.ok()) return opened.status();
  Table table = opened.value().table.has_value()
                    ? std::move(*opened.value().table)
                    : std::move(seed);
  auto db = std::unique_ptr<RankCubeDb>(
      new RankCubeDb(std::move(table), std::move(options)));
  db->durability_ = std::move(opened.value().manager);
  db->recovery_ = opened.value().info;
  db->read_only_ = db->recovery_.read_only;
  // kTable device misses now pread + CRC-verify the checkpoint file.
  db->store_.AttachTableBacking(db->durability_->checkpoint_pages());
  return db;
}

void RankCubeDb::DegradeLocked(const std::string& reason) {
  read_only_ = true;
  recovery_.read_only = true;
  if (recovery_.degraded_reason.empty()) {
    recovery_.degraded_reason = reason;
  }
}

bool RankCubeDb::read_only() const {
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  return read_only_;
}

Result<const RankingEngine*> RankCubeDb::EngineLocked(
    const std::string& name) {
  auto it = engines_.find(name);
  if (it != engines_.end()) return it->second.get();
  if (catalog_.Find(name) == nullptr) {
    return Status::NotFound("engine '" + name +
                            "' is not cataloged on this db");
  }
  auto built = EngineRegistry::Global().Create(name, table_, build_io_,
                                               options_.build);
  if (!built.ok()) return built.status();
  const RankingEngine* engine = built.value().get();
  engines_.emplace(name, std::move(built).value());
  // The structure now exists: its exact statistics replace the analytic
  // prediction for every later plan.
  catalog_.Put(engine->Describe());
  return engine;
}

Result<const RankingEngine*> RankCubeDb::Engine(const std::string& name) {
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  return EngineLocked(name);
}

Result<Tid> RankCubeDb::Insert(const std::vector<int32_t>& sel,
                               const std::vector<double>& rank) {
  std::unique_lock<std::shared_mutex> write(ddl_mu_);
  if (read_only_) {
    return Status::NotSupported("db is read-only (" +
                                recovery_.degraded_reason + ")");
  }
  if (durability_ != nullptr) {
    // Write-ahead ordering: validate (so replay can never hit a validation
    // error the live path didn't), log + fsync, only then apply. A WAL
    // failure leaves the table untouched and latches read-only — memory
    // and disk stay consistent, we just refuse to diverge further.
    RC_RETURN_IF_ERROR(table_.ValidateRow(sel, rank));
    Status logged = durability_->LogInsert(table_.epoch() + 1, sel, rank);
    if (!logged.ok()) {
      DegradeLocked("wal append failed: " + logged.message());
      return logged;
    }
  }
  Result<Tid> tid = table_.Insert(sel, rank);
  if (!tid.ok()) return tid;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.ApplyInsert(table_, tid.value());
  return tid;
}

Status RankCubeDb::Delete(Tid tid) {
  std::unique_lock<std::shared_mutex> write(ddl_mu_);
  if (read_only_) {
    return Status::NotSupported("db is read-only (" +
                                recovery_.degraded_reason + ")");
  }
  if (durability_ != nullptr) {
    RC_RETURN_IF_ERROR(table_.CanDelete(tid));
    Status logged = durability_->LogDelete(table_.epoch() + 1, tid);
    if (!logged.ok()) {
      DegradeLocked("wal append failed: " + logged.message());
      return logged;
    }
  }
  RC_RETURN_IF_ERROR(table_.Delete(tid));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.ApplyDelete(table_, tid);
  return Status::OK();
}

Status RankCubeDb::Checkpoint() {
  std::unique_lock<std::shared_mutex> write(ddl_mu_);
  if (durability_ == nullptr) {
    return Status::NotSupported("ephemeral db has nothing to checkpoint");
  }
  if (read_only_) {
    return Status::NotSupported("db is read-only (" +
                                recovery_.degraded_reason + ")");
  }
  RC_RETURN_IF_ERROR(durability_->SyncWal());
  RC_RETURN_IF_ERROR(durability_->Checkpoint(table_));
  store_.AttachTableBacking(durability_->checkpoint_pages());
  return Status::OK();
}

Result<CompactionReport> RankCubeDb::Compact() {
  std::unique_lock<std::shared_mutex> write(ddl_mu_);
  if (read_only_) {
    return Status::NotSupported("db is read-only (" +
                                recovery_.degraded_reason + ")");
  }
  std::lock_guard<std::mutex> lock(mu_);

  CompactionReport report;
  const DeltaStore& delta = table_.delta();
  report.absorbed_inserts = delta.InsertsSince(delta.compacted_epoch());
  report.absorbed_deletes = delta.DeletesSince(delta.compacted_epoch());
  uint64_t pages_before = build_io_.TotalPhysical();

  for (auto& [name, engine] : engines_) {
    if (engine->Freshness().fresh()) continue;
    if (engine->SupportsMaintenance()) {
      RC_RETURN_IF_ERROR(engine->Maintain(&build_io_));
      ++report.maintained;
    } else {
      // No incremental path (boolean_first postings, rank_mapping
      // composites, index_merge B+-trees): rebuild over the live table.
      auto rebuilt = EngineRegistry::Global().Create(name, table_, build_io_,
                                                     options_.build);
      if (!rebuilt.ok()) return rebuilt.status();
      engine = std::move(rebuilt).value();
      ++report.rebuilt;
    }
  }
  // Every built structure is at the current epoch: the log can go, and the
  // catalog's entries refresh to the maintained structures' exact stats.
  // Never-built entries get their analytic predictions re-derived from the
  // post-compaction statistics — geometry frozen at construction time
  // would misprice them arbitrarily as the relation grows.
  table_.MarkCompacted();
  stats_ = TableStats::Compute(table_, store_.page_size());
  for (const std::string& name : catalog_.Keys()) {
    if (engines_.count(name) == 0) {
      catalog_.Put(PredictStructureInfo(name, stats_, options_.build));
    }
  }
  for (const auto& [name, engine] : engines_) {
    (void)name;
    catalog_.Put(engine->Describe());
  }
  report.epoch = table_.epoch();
  report.pages = build_io_.TotalPhysical() - pages_before;

  if (durability_ != nullptr) {
    // The delta log is truncated, so the compaction point is exactly the
    // state a checkpoint should capture: snapshot it, rotate the WAL, and
    // let recovery start from here. On failure the previous checkpoint +
    // WAL remain the recovery source — consistent, just longer to replay.
    RC_RETURN_IF_ERROR(durability_->SyncWal());
    RC_RETURN_IF_ERROR(durability_->Checkpoint(table_));
    store_.AttachTableBacking(durability_->checkpoint_pages());
  }
  return report;
}

Result<RoutedEngine> RankCubeDb::Route(const TopKQuery& query,
                                       const QueryOptions& opts) {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_.schema()));
  RoutedEngine routed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto plan = planner_.Plan(query, stats_, catalog_, opts, &feedback_);
    if (!plan.ok()) return plan.status();
    auto engine = EngineLocked(plan.value().chosen_engine);
    if (!engine.ok()) return engine.status();
    routed.engine = engine.value();
    routed.plan = std::make_shared<const PlanInfo>(std::move(plan).value());
  }
  // Outside the lock: a hook that calls back into the db must not
  // self-deadlock, and parallel workers must not serialize planning
  // behind user hook latency.
  if (opts.trace) opts.trace(routed.plan->ToString());
  return routed;
}

std::optional<TopKResult> RankCubeDb::TryReuseLocked(
    const TopKQuery& query, const CanonicalQuery& key,
    const std::string& epoch_tag, const CachedResult& entry,
    ExecContext& ctx) {
  if (entry.expr == nullptr) return std::nullopt;
  ScoreExprPtr g = query.function->Expr();  // non-null: key.cacheable
  const Box domain = Box::Unit(table_.schema().num_rank_dims);

  // Certification budget: every matching row NOT in the candidate set has
  // f >= exclusion_bound, so under g it scores >= exclusion_bound - delta
  // where delta bounds |g - f| over the normalized ranking domain. A
  // complete entry (all matching rows listed) needs no delta — re-ranking
  // it IS brute force over the filter set — but only if f is finite on the
  // domain (a gated f silently dropped its out-of-band rows, which g might
  // admit).
  double delta = 0.0;
  if (entry.complete) {
    if (!std::isfinite(entry.expr->Range(domain).hi)) return std::nullopt;
  } else {
    delta = MaxAbsDiff(*g, *entry.expr, domain);
    if (!std::isfinite(delta)) return std::nullopt;
    // Pre-certify on the cached f-scores alone, before paying any candidate
    // I/O: each candidate's g is within delta of its f, so the k-th best g
    // over the candidates is at most F_k + delta, and every non-candidate
    // scores >= exclusion_bound - delta under g. F_k + 2*delta <
    // exclusion_bound therefore already proves the re-ranked top-k exact —
    // and when it fails, the post-rescore check below almost certainly
    // would too, so bailing here keeps a failed reuse attempt free.
    if (entry.tuples.size() < static_cast<size_t>(query.k)) {
      return std::nullopt;
    }
    double f_k = entry.tuples[static_cast<size_t>(query.k) - 1].score;
    if (!(f_k + 2.0 * delta < entry.exclusion_bound)) return std::nullopt;
  }

  Stopwatch timer;
  const size_t n = entry.tuples.size();
  std::vector<Tid> tids(n);
  for (size_t i = 0; i < n; ++i) tids[i] = entry.tuples[i].tid;
  std::vector<double> scores(n);
  query.function->EvaluateBatch(table_, tids.data(), n, scores.data());
  TopKHeap heap(query.k);
  for (size_t i = 0; i < n; ++i) {
    // Cost honesty: re-ranking touches each candidate row, so it pays the
    // same per-row page charge the scan paths do.
    table_.ChargeRowFetch(ctx.io, tids[i]);
    if (scores[i] < kInfScore) heap.Offer(tids[i], scores[i]);
  }
  if (!entry.complete) {
    // Exactness requires k results strictly better than anything the
    // candidate set could be missing.
    if (!heap.Full()) return std::nullopt;
    if (!(heap.KthScore() < entry.exclusion_bound - delta)) {
      return std::nullopt;
    }
  }

  TopKResult out;
  out.tuples = heap.Sorted();
  out.stats.tuples_evaluated = n;
  out.stats.pages_read = ctx.io->TotalPhysical();
  out.stats.time_ms = timer.ElapsedMs();
  out.plan = entry.plan;

  // The certified answer is a valid cache entry under the NEW function:
  // dropped candidates score >= G_k and (non-complete case) non-candidates
  // score >= exclusion_bound - delta > G_k, so G_k is a sound exclusion
  // bound for the k tuples listed.
  CachedResult fresh;
  fresh.tuples = out.tuples;
  fresh.complete = !heap.Full();
  fresh.exclusion_bound = heap.Full() ? heap.KthScore() : kInfScore;
  fresh.expr = g;
  fresh.plan = entry.plan;
  cache_.Insert(key, epoch_tag, std::move(fresh));
  return out;
}

Result<TopKResult> RankCubeDb::ExecuteQueryLocked(const TopKQuery& query,
                                                  const QueryOptions& opts,
                                                  ExecContext& ctx) {
  // Budget- or deadline-constrained queries still take exact hits (they
  // cost ~0 pages) but never overfetch or re-rank — the cached path must
  // not charge pages the uncached path wouldn't.
  const bool unconstrained = ctx.page_budget == 0 && !ctx.has_deadline();
  CanonicalQuery key;
  std::string epoch_tag;
  bool cacheable = false;
  if (cache_.enabled() && opts.force_engine.empty()) {
    // Validate before serving from cache so a malformed query fails
    // identically hot or cold.
    RC_RETURN_IF_ERROR(ValidateQuery(query, table_.schema()));
    key = CanonicalizeQuery(query);
    if (key.cacheable) {
      cacheable = true;
      epoch_tag = std::to_string(table_.epoch());
      if (std::optional<CachedResult> hit = cache_.Lookup(key, epoch_tag)) {
        TopKResult out;
        size_t n = std::min(hit->tuples.size(), static_cast<size_t>(query.k));
        out.tuples.assign(hit->tuples.begin(), hit->tuples.begin() + n);
        out.plan = hit->plan;
        return out;
      }
      if (unconstrained) {
        // One sibling key can hold several distinct functions; try each
        // candidate set until one certifies. Failed attempts cost only a
        // delta-bound tree walk (the pre-certification bails before I/O).
        for (const CachedResult& sibling :
             cache_.FindSiblings(key, epoch_tag)) {
          if (std::optional<TopKResult> reused =
                  TryReuseLocked(query, key, epoch_tag, sibling, ctx)) {
            cache_.RecordReuseHit();
            return std::move(*reused);
          }
        }
      }
    }
  }

  // Full execution. A cacheable miss overfetches (k' = overfetch * k) so
  // the cached prefix doubles as the reuse candidate set; the caller is
  // still served exactly k. Overfetch is adaptive: only families the cache
  // has seen before pay the deeper execution — a one-off query would buy a
  // candidate set nobody ever re-ranks.
  TopKQuery exec_query = query;
  if (cacheable && unconstrained && cache_.overfetch() > 1.0 &&
      cache_.FamilySeen(key)) {
    exec_query.k = std::max(
        query.k, static_cast<int>(cache_.overfetch() *
                                  static_cast<double>(query.k)));
  }
  auto routed = Route(exec_query, opts);
  if (!routed.ok()) return routed.status();
  Result<TopKResult> result = routed.value().engine->Execute(exec_query, ctx);
  if (!result.ok()) return result;
  result.value().plan = routed.value().plan;

  // True-cost feedback: the plan's (already corrected) page estimate
  // against this query's measured physical reads.
  if (feedback_.enabled() && routed.value().plan != nullptr) {
    feedback_.Observe(routed.value().plan->chosen_engine,
                      routed.value().plan->estimated_pages,
                      static_cast<double>(ctx.io->TotalPhysical()));
  }

  if (cacheable) {
    cache_.RecordMiss();
    TopKResult& full = result.value();
    CachedResult entry;
    entry.tuples = full.tuples;
    // The heap never filled => every matching (finite-score) row is listed.
    entry.complete = static_cast<int>(full.tuples.size()) < exec_query.k;
    entry.exclusion_bound =
        entry.complete ? kInfScore : full.tuples.back().score;
    entry.expr = query.function->Expr();
    entry.plan = full.plan;
    cache_.Insert(key, epoch_tag, std::move(entry));
    if (full.tuples.size() > static_cast<size_t>(query.k)) {
      full.tuples.resize(static_cast<size_t>(query.k));
    }
  }
  return result;
}

Result<TopKResult> RankCubeDb::Query(const TopKQuery& query,
                                     const QueryOptions& opts) {
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  IoSession io(&store_);
  ExecContext ctx;
  ctx.io = &io;
  ctx.page_budget = opts.page_budget;
  if (opts.deadline_ms > 0) {
    ctx.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(opts.deadline_ms);
  }
  ctx.trace = opts.trace;
  Result<TopKResult> result = ExecuteQueryLocked(query, opts, ctx);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++traffic_.queries_executed;
    if (!result.ok()) ++traffic_.query_failures;
    traffic_.pages_logical += io.TotalLogical();
    traffic_.pages_charged += io.TotalPhysical();
    traffic_.pages_device += io.TotalDevice();
  }
  return result;
}

Result<PlanInfo> RankCubeDb::Explain(const TopKQuery& query,
                                     const QueryOptions& opts) const {
  RC_RETURN_IF_ERROR(ValidateQuery(query, table_.schema()));
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  return planner_.Plan(query, stats_, catalog_, opts, &feedback_);
}

Result<BatchReport> RankCubeDb::QueryAll(
    const std::vector<TopKQuery>& workload, const QueryOptions& opts,
    BatchOptions batch) {
  return QueryParallel(workload, 1, opts, batch);
}

Result<BatchReport> RankCubeDb::QueryParallel(
    const std::vector<TopKQuery>& workload, int num_threads,
    const QueryOptions& opts, BatchOptions batch) {
  // Held shared for the whole batch: workers read the table concurrently,
  // writers wait for the batch to drain.
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  if (batch.page_budget == 0) batch.page_budget = opts.page_budget;
  if (batch.deadline_ms == 0) batch.deadline_ms = opts.deadline_ms;
  BatchExecutor executor(
      QueryExecutor([this, opts](const TopKQuery& query, ExecContext& ctx) {
        return ExecuteQueryLocked(query, opts, ctx);
      }),
      batch);
  auto report = executor.ExecuteParallel(workload, store_, num_threads);
  if (report.ok()) {
    const BatchReport& r = report.value();
    std::lock_guard<std::mutex> lock(mu_);
    traffic_.queries_executed += r.executed;
    traffic_.query_failures += r.failed;
    for (const IoStats& s : r.io) traffic_.pages_logical += s.logical;
    traffic_.pages_charged += r.physical_pages;
    traffic_.pages_device += r.device_pages;
  }
  return report;
}

std::vector<AccessStructureInfo> RankCubeDb::CatalogEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.entries();
}

std::vector<std::string> RankCubeDb::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.Keys();
}

std::map<std::string, FreshnessInfo> RankCubeDb::FreshnessByEngine() const {
  // Freshness reads the table's delta store, so exclude writers too.
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, FreshnessInfo> out;
  for (const auto& [name, engine] : engines_) {
    out.emplace(name, engine->Freshness());
  }
  return out;
}

DbStats RankCubeDb::Stats() const {
  // Writers are excluded for the whole snapshot, so relation counters,
  // delta drift and per-engine freshness describe one instant.
  std::shared_lock<std::shared_mutex> read(ddl_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  DbStats s;
  s.rows = table_.num_rows();
  s.live_rows = table_.num_live();
  s.epoch = table_.epoch();
  const DeltaStore& delta = table_.delta();
  s.compacted_epoch = delta.compacted_epoch();
  s.pending_inserts = delta.InsertsSince(delta.compacted_epoch());
  s.pending_deletes = delta.DeletesSince(delta.compacted_epoch());
  s.engines_cataloged = catalog_.Keys().size();
  s.engines_built = engines_.size();
  for (const auto& [name, engine] : engines_) {
    s.freshness.emplace(name, engine->Freshness());
  }
  s.construction_pages = build_io_.TotalPhysical();
  s.queries_executed = traffic_.queries_executed;
  s.query_failures = traffic_.query_failures;
  s.pages_logical = traffic_.pages_logical;
  s.pages_charged = traffic_.pages_charged;
  s.pages_device = traffic_.pages_device;
  s.cache_hit_rate =
      s.pages_logical > 0
          ? 1.0 - static_cast<double>(s.pages_device) /
                      static_cast<double>(s.pages_logical)
          : 0.0;
  ResultCacheStats cs = cache_.Stats();
  s.cache_hits = cs.hits;
  s.cache_reuse_hits = cs.reuse_hits;
  s.cache_misses = cs.misses;
  s.cache_entries = cs.entries;
  s.cache_bytes = cs.bytes;
  s.cache_max_bytes = cs.max_bytes;
  s.cache_evictions = cs.evictions;
  s.cache_invalidations = cs.invalidations;
  s.durable = durability_ != nullptr;
  if (durability_ != nullptr) {
    s.read_only = read_only_;
    s.degraded_reason = recovery_.degraded_reason;
    s.checkpoint_epoch = durability_->checkpoint_epoch();
    s.checkpoint_generation = durability_->checkpoint_generation();
    s.wal_records = durability_->wal_records();
    s.wal_bytes = durability_->wal_bytes();
    s.backing_reads = store_.backing_reads();
    s.backing_corruptions = store_.backing_corruptions();
    s.recovered_records = recovery_.replayed;
    s.recovery_ms = recovery_.recovery_ms;
  }
  return s;
}

uint64_t RankCubeDb::construction_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return build_io_.TotalPhysical();
}

}  // namespace rankcube
