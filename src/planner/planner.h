// Cost-based plan selection: which physical access structure answers a
// given logical top-k query.
//
// The Planner enumerates every catalog entry as a candidate, runs the
// capability checks and the block-access cost model (cost_model.h) on each,
// and picks the cheapest feasible candidate under the requested objective.
// The full candidate table travels back in the PlanInfo — both for
// db.Explain() and for comparing estimated against measured pages.
//
// Planning never touches an engine or charges a page: it reads only
// TableStats and AccessStructureInfo, so RankCubeDb can plan (and Explain)
// queries against structures that have not been built yet.
#ifndef RANKCUBE_PLANNER_PLANNER_H_
#define RANKCUBE_PLANNER_PLANNER_H_

#include <functional>
#include <string>

#include "cache/feedback.h"
#include "engine/structure_info.h"
#include "planner/catalog.h"
#include "planner/cost_model.h"

namespace rankcube {

/// Per-query planner hints + execution knobs, the facade-level analogue of
/// ExecContext (RankCubeDb copies these into the context it builds).
struct QueryOptions {
  /// Bypass the cost model and run this registry key. The key must exist
  /// in the db's catalog; capability checks are skipped (a forced engine
  /// may still reject the query at execution, with its own Status).
  std::string force_engine;

  /// Objective the cost model minimizes: physical pages, or pages weighted
  /// by device cost plus the CPU evaluation term.
  OptimizeFor optimize_for = OptimizeFor::kPages;

  /// Physical-page budget per query (0 = unlimited), enforced by
  /// RankingEngine::Execute exactly as in a direct ExecContext.
  uint64_t page_budget = 0;

  /// Wall-clock deadline per query in milliseconds, measured from dispatch
  /// (0 = none). Enforced next to the page budget with the distinct
  /// Status::DeadlineExceeded, so admission layers can tell "too slow"
  /// from "too expensive".
  uint64_t deadline_ms = 0;

  /// Trace hook; receives planner decisions and engine phase lines.
  std::function<void(const std::string&)> trace;
};

struct PlannerOptions {
  CostModelOptions cost;
};

class Planner {
 public:
  explicit Planner(PlannerOptions options = PlannerOptions())
      : options_(options) {}

  /// Picks the engine for `query` from `catalog`. Returns NotFound with
  /// the per-candidate reasons when no structure can answer the query, and
  /// NotFound listing the catalog keys when opts.force_engine names an
  /// unknown engine. When `feedback` is non-null, each candidate's page
  /// estimate is multiplied by the learned per-family correction before
  /// costing, so measured I/O steers both the choice and the reported
  /// estimated_pages.
  Result<PlanInfo> Plan(const TopKQuery& query, const TableStats& stats,
                        const Catalog& catalog, const QueryOptions& opts,
                        const CostFeedback* feedback = nullptr) const;

  const PlannerOptions& options() const { return options_; }

 private:
  PlanCandidate MakeCandidate(const std::string& engine,
                              const CostEstimate& est,
                              const QueryOptions& opts) const;

  PlannerOptions options_;
};

}  // namespace rankcube

#endif  // RANKCUBE_PLANNER_PLANNER_H_
