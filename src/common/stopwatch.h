// Wall-clock stopwatch used by benchmark harnesses and query statistics.
#ifndef RANKCUBE_COMMON_STOPWATCH_H_
#define RANKCUBE_COMMON_STOPWATCH_H_

#include <chrono>

namespace rankcube {

/// Monotonic stopwatch; `ElapsedMs()` may be sampled repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rankcube

#endif  // RANKCUBE_COMMON_STOPWATCH_H_
