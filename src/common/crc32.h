// CRC-32C (Castagnoli) over byte ranges; the integrity check framing every
// durable artifact in the storage layer: WAL records, checkpoint pages, and
// the manifest. Software table-driven implementation — the durability tests
// must behave identically on every build arch, so no hardware dispatch.
#ifndef RANKCUBE_COMMON_CRC32_H_
#define RANKCUBE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rankcube {

/// CRC-32C of `data`, optionally continuing from a previous value (pass the
/// prior return value as `seed` to checksum a message in pieces).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// A checksum that is never stored: masking (RocksDB-style rotation + offset)
/// would be overkill here, but 0 is reserved as "unset" in page headers, so
/// stored checksums use this (maps 0 -> 1, collision-harmless).
inline uint32_t StoredCrc32c(std::string_view data) {
  uint32_t c = Crc32c(data);
  return c == 0 ? 1u : c;
}

}  // namespace rankcube

#endif  // RANKCUBE_COMMON_CRC32_H_
