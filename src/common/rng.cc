#include "common/rng.h"

#include <cmath>

namespace rankcube {

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n == 0) return 0;
  if (zipf_n_ != n || zipf_theta_ != theta) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      zipf_cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
  }
  double u = Uniform01();
  // Binary search the CDF.
  uint64_t lo = 0, hi = n - 1;
  while (lo < hi) {
    uint64_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rankcube
