// Axis-aligned boxes over the ranking dimensions. Shared by the grid
// partition (Ch3), R-tree (Ch4), and joint-state space (Ch5).
#ifndef RANKCUBE_COMMON_GEOMETRY_H_
#define RANKCUBE_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace rankcube {

/// Closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return lo <= x && x <= hi; }
  bool Intersects(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
  double Clamp(double x) const { return std::min(hi, std::max(lo, x)); }
  double width() const { return hi - lo; }
};

/// Axis-aligned box: one Interval per dimension.
class Box {
 public:
  Box() = default;
  explicit Box(size_t dims) : iv_(dims) {}
  explicit Box(std::vector<Interval> iv) : iv_(std::move(iv)) {}
  Box(std::initializer_list<Interval> iv) : iv_(iv) {}

  /// Box spanning [0,1]^dims (the normalized ranking domain, §3.2.2).
  static Box Unit(size_t dims) {
    Box b(dims);
    for (auto& i : b.iv_) i = {0.0, 1.0};
    return b;
  }

  /// Empty box suitable as the identity for ExpandToInclude.
  static Box EmptyFor(size_t dims) {
    Box b(dims);
    for (auto& i : b.iv_) {
      i = {std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};
    }
    return b;
  }

  size_t dims() const { return iv_.size(); }
  Interval& operator[](size_t d) { return iv_[d]; }
  const Interval& operator[](size_t d) const { return iv_[d]; }

  bool Contains(const std::vector<double>& p) const {
    assert(p.size() == iv_.size());
    for (size_t d = 0; d < iv_.size(); ++d) {
      if (!iv_[d].Contains(p[d])) return false;
    }
    return true;
  }

  bool Intersects(const Box& o) const {
    assert(o.dims() == dims());
    for (size_t d = 0; d < iv_.size(); ++d) {
      if (!iv_[d].Intersects(o.iv_[d])) return false;
    }
    return true;
  }

  void ExpandToInclude(const std::vector<double>& p) {
    assert(p.size() == iv_.size());
    for (size_t d = 0; d < iv_.size(); ++d) {
      iv_[d].lo = std::min(iv_[d].lo, p[d]);
      iv_[d].hi = std::max(iv_[d].hi, p[d]);
    }
  }

  void ExpandToInclude(const Box& o) {
    assert(o.dims() == dims());
    for (size_t d = 0; d < iv_.size(); ++d) {
      iv_[d].lo = std::min(iv_[d].lo, o.iv_[d].lo);
      iv_[d].hi = std::max(iv_[d].hi, o.iv_[d].hi);
    }
  }

  /// Increase in "margin" (sum of widths) if `p` were added; the R-tree uses
  /// area enlargement, this is the cheap fallback for degenerate boxes.
  double Margin() const {
    double m = 0.0;
    for (const auto& i : iv_) m += i.width();
    return m;
  }

  double Area() const {
    double a = 1.0;
    for (const auto& i : iv_) a *= std::max(0.0, i.width());
    return a;
  }

  std::string ToString() const {
    std::string s = "[";
    for (size_t d = 0; d < iv_.size(); ++d) {
      if (d) s += " x ";
      s += "(" + std::to_string(iv_[d].lo) + "," + std::to_string(iv_[d].hi) +
           ")";
    }
    return s + "]";
  }

 private:
  std::vector<Interval> iv_;
};

}  // namespace rankcube

#endif  // RANKCUBE_COMMON_GEOMETRY_H_
