#include "common/crc32.h"

namespace rankcube {

namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Crc32cTable {
  uint32_t t[256];
  constexpr Crc32cTable() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      }
      t[i] = c;
    }
  }
};

constexpr Crc32cTable kTable;

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace rankcube
