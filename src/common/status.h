// Status / Result error-handling primitives (RocksDB-style: no exceptions on
// library paths; fallible operations return a Status or a Result<T>).
#ifndef RANKCUBE_COMMON_STATUS_H_
#define RANKCUBE_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rankcube {

/// Outcome of a fallible library operation.
///
/// Mirrors the RocksDB `Status` idiom: cheap to construct and copy, carries a
/// coarse error code plus a human-readable message. Library code never throws;
/// callers are expected to check `ok()` (or use the RC_RETURN_IF_ERROR macro).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kNotSupported,
    kCorruption,
    kOutOfRange,
    kDeadlineExceeded,
    kResourceExhausted,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  /// A wall-clock deadline elapsed before (or while) the operation ran;
  /// distinct from OutOfRange budget overruns so admission layers can tell
  /// "too slow" from "too expensive".
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// A quota (tenant in-flight limit, connection limit, ...) rejected the
  /// operation before it did any work; retrying later may succeed.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// An environment failure outside the library's contract (socket errors,
  /// OS resources); the message carries the errno text.
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>"; for logs and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Value-or-Status, by analogy with absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

#define RC_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::rankcube::Status _rc_status = (expr);      \
    if (!_rc_status.ok()) return _rc_status;     \
  } while (false)

}  // namespace rankcube

#endif  // RANKCUBE_COMMON_STATUS_H_
