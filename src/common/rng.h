// Deterministic random number generation for data/query synthesis.
#ifndef RANKCUBE_COMMON_RNG_H_
#define RANKCUBE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace rankcube {

/// Seeded pseudo-random generator used by every synthetic workload so that
/// experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform01() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform01(); }

  /// Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Standard normal.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Zipf-distributed integer in [0, n) with skew parameter `theta` in (0, 1].
  /// theta -> 0 approaches uniform; larger values are more skewed.
  uint64_t Zipf(uint64_t n, double theta);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};

  // Cached harmonic normalization for Zipf (recomputed when (n, theta)
  // changes).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace rankcube

#endif  // RANKCUBE_COMMON_RNG_H_
