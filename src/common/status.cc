#include "common/status.h"

namespace rankcube {

std::string Status::ToString() const {
  if (ok()) return "OK";
  const char* name = "unknown";
  switch (code_) {
    case Code::kOk:
      name = "OK";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kOutOfRange:
      name = "OutOfRange";
      break;
    case Code::kDeadlineExceeded:
      name = "DeadlineExceeded";
      break;
    case Code::kResourceExhausted:
      name = "ResourceExhausted";
      break;
    case Code::kInternal:
      name = "Internal";
      break;
  }
  return std::string(name) + ": " + message_;
}

}  // namespace rankcube
