#include "gen/queries.h"

#include <algorithm>
#include <numeric>

namespace rankcube {

RankingFunctionPtr MakeRankingFunction(const Table& table,
                                       QueryFunctionKind kind,
                                       int num_rank_used, double skew,
                                       Rng* rng) {
  const int r_total = table.num_rank_dims();
  const int r = std::min(num_rank_used, r_total);
  std::vector<double> w(r_total, 0.0);
  switch (kind) {
    case QueryFunctionKind::kLinear: {
      // Weights span [1, skew] so that max/min == u (Table 3.9).
      for (int d = 0; d < r; ++d) w[d] = 1.0 + (skew - 1.0) * rng->Uniform01();
      w[0] = 1.0;
      if (r > 1) w[r - 1] = skew;
      return std::make_shared<LinearFunction>(std::move(w));
    }
    case QueryFunctionKind::kDistance: {
      std::vector<double> t(r_total, 0.0);
      for (int d = 0; d < r; ++d) {
        w[d] = 1.0 + (skew - 1.0) * rng->Uniform01();
        t[d] = rng->Uniform01();
      }
      return std::make_shared<QuadraticDistance>(std::move(w), std::move(t));
    }
    case QueryFunctionKind::kSqLinear: {
      // fg = (2X - Y - Z)^2 style: first weight positive, rest negative.
      for (int d = 0; d < r; ++d) w[d] = (d == 0) ? 2.0 : -1.0;
      return std::make_shared<SquaredLinear>(std::move(w));
    }
    case QueryFunctionKind::kGeneralAB:
      return std::make_shared<GeneralAB>(r_total, 0, std::min(1, r_total - 1));
    case QueryFunctionKind::kConstrained: {
      double lo = 0.3 * rng->Uniform01();
      double hi = lo + 0.2 + 0.3 * rng->Uniform01();
      return std::make_shared<ConstrainedSum>(
          r_total, 0, std::min(1, r_total - 1), lo, std::min(1.0, hi));
    }
  }
  return nullptr;
}

std::vector<TopKQuery> GenerateQueries(const Table& table,
                                       const QueryWorkloadSpec& spec) {
  Rng rng(spec.seed);
  std::vector<TopKQuery> out;
  out.reserve(spec.num_queries);
  const int s_total = table.num_sel_dims();
  for (int q = 0; q < spec.num_queries; ++q) {
    TopKQuery query;
    query.k = spec.k;

    // Choose `s` distinct selection dimensions.
    std::vector<int> dims(s_total);
    std::iota(dims.begin(), dims.end(), 0);
    std::shuffle(dims.begin(), dims.end(), rng.engine());
    int s = std::min(spec.num_predicates, s_total);

    Tid anchor = 0;
    if (spec.anchor_on_rows && table.num_rows() > 0) {
      anchor = static_cast<Tid>(rng.UniformInt(table.num_rows()));
    }
    for (int i = 0; i < s; ++i) {
      Predicate p;
      p.dim = dims[i];
      p.value = spec.anchor_on_rows && table.num_rows() > 0
                    ? table.sel(anchor, p.dim)
                    : static_cast<int32_t>(rng.UniformInt(
                          table.schema().sel_cardinality[p.dim]));
      query.predicates.push_back(p);
    }
    std::sort(query.predicates.begin(), query.predicates.end(),
              [](const Predicate& a, const Predicate& b) {
                return a.dim < b.dim;
              });

    query.function = MakeRankingFunction(table, spec.kind, spec.num_rank_used,
                                         spec.skew, &rng);
    out.push_back(std::move(query));
  }
  return out;
}

}  // namespace rankcube
