// Synthetic stand-in for the Forest CoverType real data set (§3.5.1, §4.4.1,
// §5.4.1). The UCI original is not available offline; this generator matches
// the published schema statistics the thesis relies on: 3 ranking attributes
// with large cardinalities (~1989 / 5787 / 5827 distinct values) and 12
// selection attributes with cardinalities 255, 207, 185, 67, 7, 2, 2, 2, 2,
// 2, 2, 2, with skewed (zipfian) value frequencies. The thesis duplicates the
// data 5x to reach ~3.5M rows; `duplication` reproduces that switch.
#ifndef RANKCUBE_GEN_COVTYPE_H_
#define RANKCUBE_GEN_COVTYPE_H_

#include <cstdint>

#include "storage/table.h"

namespace rankcube {

struct CovtypeSpec {
  uint64_t base_rows = 116202;  ///< 581,012 / 5 scaled to laptop size
  int duplication = 5;          ///< thesis duplicates the base data 5x
  uint64_t seed = 7;
};

/// Generates the CoverType-like relation (12 selection dims, 3 ranking dims).
Table GenerateCovtypeLike(const CovtypeSpec& spec);

}  // namespace rankcube

#endif  // RANKCUBE_GEN_COVTYPE_H_
