#include "gen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace rankcube {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

void FillRank(Rng* rng, RankDistribution dist, std::vector<double>* out) {
  const size_t r = out->size();
  switch (dist) {
    case RankDistribution::kUniform:
      for (auto& v : *out) v = rng->Uniform01();
      break;
    case RankDistribution::kCorrelated: {
      // Shared level + small independent jitter: points hug the diagonal.
      double c = rng->Uniform01();
      for (auto& v : *out) v = Clamp01(c + rng->Gaussian(0.0, 0.05));
      break;
    }
    case RankDistribution::kAntiCorrelated: {
      // Constant-sum simplex sample: good on one dimension implies bad on
      // the others (classic skyline-benchmark shape).
      double level = Clamp01(0.5 + rng->Gaussian(0.0, 0.05));
      double total = level * static_cast<double>(r);
      std::vector<double> w(r);
      double wsum = 0.0;
      for (auto& x : w) {
        x = -std::log(1.0 - rng->Uniform01());  // Exp(1) -> Dirichlet(1)
        wsum += x;
      }
      for (size_t d = 0; d < r; ++d) (*out)[d] = Clamp01(total * w[d] / wsum);
      break;
    }
  }
}

}  // namespace

Table GenerateSynthetic(const SyntheticSpec& spec) {
  TableSchema schema;
  if (!spec.sel_cardinalities.empty()) {
    schema.sel_cardinality = spec.sel_cardinalities;
  } else {
    schema.sel_cardinality.assign(spec.num_sel_dims, spec.cardinality);
  }
  schema.num_rank_dims = spec.num_rank_dims;

  Table table(schema);
  Rng rng(spec.seed);
  std::vector<int32_t> sel(schema.num_sel_dims());
  std::vector<double> rank(spec.num_rank_dims);
  for (uint64_t i = 0; i < spec.num_rows; ++i) {
    for (int d = 0; d < schema.num_sel_dims(); ++d) {
      uint64_t card = static_cast<uint64_t>(schema.sel_cardinality[d]);
      sel[d] = static_cast<int32_t>(
          spec.sel_zipf_theta > 0.0 ? rng.Zipf(card, spec.sel_zipf_theta)
                                    : rng.UniformInt(card));
    }
    FillRank(&rng, spec.distribution, &rank);
    Status s = table.AddRow(sel, rank);
    (void)s;  // generator values are in-domain by construction
  }
  return table;
}

}  // namespace rankcube
