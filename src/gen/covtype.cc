#include "gen/covtype.h"

#include <vector>

#include "common/rng.h"

namespace rankcube {

Table GenerateCovtypeLike(const CovtypeSpec& spec) {
  // Published cardinalities (§3.5.1): selection 255,207,185,67,7,2,...,2;
  // ranking attributes quantized to ~1989/5787/5827 distinct values.
  TableSchema schema;
  schema.sel_cardinality = {255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2};
  schema.num_rank_dims = 3;
  const int32_t kRankCard[3] = {1989, 5787, 5827};

  Table table(schema);
  Rng rng(spec.seed);
  std::vector<int32_t> sel(schema.num_sel_dims());
  std::vector<double> rank(3);
  for (uint64_t i = 0; i < spec.base_rows; ++i) {
    for (int d = 0; d < schema.num_sel_dims(); ++d) {
      // Real attribute frequencies are skewed; zipf(0.6) approximates the
      // head-heavy value distribution of elevation-zone / soil-type codes.
      sel[d] = static_cast<int32_t>(
          rng.Zipf(static_cast<uint64_t>(schema.sel_cardinality[d]), 0.6));
    }
    for (int d = 0; d < 3; ++d) {
      // Quantized quantitative attribute, normalized to [0,1]; mild central
      // tendency like elevation/aspect measurements.
      double v = 0.5 + rng.Gaussian(0.0, 0.22);
      v = std::min(1.0, std::max(0.0, v));
      int32_t q = static_cast<int32_t>(v * (kRankCard[d] - 1));
      rank[d] = static_cast<double>(q) / (kRankCard[d] - 1);
    }
    // The thesis duplicates the relation 5x ("to achieve a reasonable size");
    // duplicated rows are identical, which matters for block packing.
    for (int copy = 0; copy < spec.duplication; ++copy) {
      Status s = table.AddRow(sel, rank);
      (void)s;
    }
  }
  return table;
}

}  // namespace rankcube
