// Random query workloads following Table 3.9: s selection conditions, a
// ranking function over r dimensions, k results, and query skewness
// u = max(alpha) / min(alpha) over linear weights.
#ifndef RANKCUBE_GEN_QUERIES_H_
#define RANKCUBE_GEN_QUERIES_H_

#include <vector>

#include "common/rng.h"
#include "func/query.h"
#include "storage/table.h"

namespace rankcube {

/// Kind of ranking function to synthesize.
enum class QueryFunctionKind {
  kLinear,     ///< sum of positive weights (skewness-controlled)
  kDistance,   ///< weighted squared distance to a random target
  kSqLinear,   ///< (w . x)^2 with mixed-sign weights (min-square-error)
  kGeneralAB,  ///< (A - B^2)^2
  kConstrained ///< (A + B)/eta(B)
};

struct QueryWorkloadSpec {
  int num_queries = 20;       ///< thesis reports averages over 20 queries
  int num_predicates = 2;     ///< s
  int num_rank_used = 2;      ///< r
  int k = 10;
  double skew = 1.0;          ///< u
  QueryFunctionKind kind = QueryFunctionKind::kLinear;
  uint64_t seed = 1234;

  /// When true, predicate values are drawn from an existing row so that the
  /// selection is guaranteed non-empty (matches how the thesis samples
  /// "randomly issued queries" over data that exists).
  bool anchor_on_rows = true;
};

/// Generates `spec.num_queries` queries against `table`'s schema.
std::vector<TopKQuery> GenerateQueries(const Table& table,
                                       const QueryWorkloadSpec& spec);

/// Builds one ranking function of `kind` over `r` of the table's ranking
/// dimensions (the first `num_rank_used`, weights randomized by `rng`).
RankingFunctionPtr MakeRankingFunction(const Table& table,
                                       QueryFunctionKind kind,
                                       int num_rank_used, double skew,
                                       Rng* rng);

}  // namespace rankcube

#endif  // RANKCUBE_GEN_QUERIES_H_
