// Synthetic data generation following Table 3.8 / §4.4.1 / §7.3.1: S
// selection dimensions with cardinality C, R ranking dimensions in [0,1]
// under uniform (E), correlated (C) or anti-correlated (A) distributions.
#ifndef RANKCUBE_GEN_SYNTHETIC_H_
#define RANKCUBE_GEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace rankcube {

/// Ranking-dimension joint distribution (S = {E, C, A} in §4.4.1).
enum class RankDistribution {
  kUniform,         ///< E: independent uniform
  kCorrelated,      ///< C: values clustered around a shared level
  kAntiCorrelated,  ///< A: values trade off (sum roughly constant)
};

/// Parameters for one synthetic relation.
struct SyntheticSpec {
  uint64_t num_rows = 100000;                 ///< T
  int num_sel_dims = 3;                       ///< S
  int32_t cardinality = 20;                   ///< C, per selection dimension
  int num_rank_dims = 2;                      ///< R
  RankDistribution distribution = RankDistribution::kUniform;
  double sel_zipf_theta = 0.0;                ///< 0 = uniform selection values
  uint64_t seed = 42;

  /// Per-dimension cardinalities override (empty = all `cardinality`).
  std::vector<int32_t> sel_cardinalities;
};

/// Materializes a table for `spec`.
Table GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace rankcube

#endif  // RANKCUBE_GEN_SYNTHETIC_H_
