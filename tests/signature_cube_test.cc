#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "common/rng.h"
#include "core/signature_cube.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "reference.h"

namespace rankcube {
namespace {

Table MakeData(uint64_t rows = 6000, int s = 3, int32_t c = 10, int r = 2,
               uint64_t seed = 77) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = s;
  spec.cardinality = c;
  spec.num_rank_dims = r;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TEST(SignatureCubeTest, MatchesBruteForceOnWorkload) {
  Table t = MakeData();
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(t, io);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 25;
  qspec.num_predicates = 2;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = cube.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q))) << q.ToString();
  }
}

TEST(SignatureCubeTest, AllFunctionKinds) {
  Table t = MakeData(4000, 3, 8, 3);
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(t, io);
  for (auto kind : {QueryFunctionKind::kLinear, QueryFunctionKind::kDistance,
                    QueryFunctionKind::kSqLinear}) {
    QueryWorkloadSpec qspec;
    qspec.num_queries = 8;
    qspec.num_rank_used = 3;
    qspec.kind = kind;
    for (const auto& q : GenerateQueries(t, qspec)) {
      ExecStats stats;
      auto res = cube.TopK(q, &io, &stats);
      ASSERT_TRUE(res.ok());
      EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q)))
          << q.ToString();
    }
  }
}

TEST(SignatureCubeTest, InsertBuildMatchesBulkBuild) {
  Table t = MakeData(2000);
  PageStore store;
  IoSession io{&store};
  SignatureCubeOptions opt;
  opt.bulk_load = false;  // tuple-at-a-time R-tree construction
  SignatureCube cube(t, io, opt);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = cube.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q))) << q.ToString();
  }
}

TEST(SignatureCubeTest, SignaturePruningBeatsRankingFirstOnIo) {
  Table t = MakeData(20000, 3, 50, 2);  // selective predicates
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(t, io);
  RankingFirst ranking(t, &cube.rtree());
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  qspec.num_predicates = 2;
  uint64_t sig_io = 0, rank_io = 0;
  for (const auto& q : GenerateQueries(t, qspec)) {
    io.ResetStats();
    ExecStats s1;
    auto r1 = cube.TopK(q, &io, &s1);
    ASSERT_TRUE(r1.ok());
    sig_io += io.stats(IoCategory::kRTree).physical;
    io.ResetStats();
    ExecStats s2;
    auto r2 = ranking.TopK(q, &io, &s2);
    ASSERT_TRUE(r2.ok());
    rank_io += io.stats(IoCategory::kRTree).physical;
    EXPECT_EQ(ScoresOf(r1.value()), ScoresOf(*r2));
  }
  EXPECT_LT(sig_io, rank_io);  // Fig 4.13's claim
}

TEST(SignatureCubeTest, IncrementalInsertMatchesRebuild) {
  SyntheticSpec spec;
  spec.num_rows = 3000;
  spec.num_sel_dims = 3;
  spec.cardinality = 6;
  spec.num_rank_dims = 2;
  spec.seed = 5;
  Table t = GenerateSynthetic(spec);

  // Build cube over the first 2500 rows' paths by constructing from a
  // prefix table, then inserting the remaining rows incrementally.
  TableSchema schema = t.schema();
  Table prefix(schema);
  std::vector<double> rank(t.num_rank_dims());
  for (Tid i = 0; i < 2500; ++i) {
    t.CopyRankRow(i, rank.data());
    ASSERT_TRUE(prefix.AddRow({t.sel(i, 0), t.sel(i, 1), t.sel(i, 2)}, rank)
                    .ok());
  }
  PageStore store;
  IoSession io{&store};
  SignatureCubeOptions opt;
  opt.bulk_load = false;
  SignatureCube cube(prefix, io, opt);

  std::vector<Tid> extra;
  for (Tid i = 2500; i < 3000; ++i) {
    t.CopyRankRow(i, rank.data());
    ASSERT_TRUE(prefix.AddRow({t.sel(i, 0), t.sel(i, 1), t.sel(i, 2)}, rank)
                    .ok());
    extra.push_back(i);
  }
  cube.InsertBatch(extra, &io);

  QueryWorkloadSpec qspec;
  qspec.num_queries = 15;
  for (const auto& q : GenerateQueries(prefix, qspec)) {
    ExecStats stats;
    auto res = cube.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(prefix, q)))
        << q.ToString();
  }
}

// Regression: an R-tree leaf split moves some entries to a sibling while
// the stay-behind entries compact to lower positions, so within one
// update batch a mover's OLD position can alias a stayer's NEW one.
// Applying clear/set per update in batch order then let the mover's
// ClearPath erase the bit the stayer had just set — the base row silently
// vanished from the cell signature and from every later answer.
// ApplyPathUpdates must net per-tuple moves and apply every clear before
// any set. Tiny fan-out forces a split every few inserts, and verifying
// after EVERY insert catches the first lost row instead of hoping a
// workload query lands on it.
TEST(SignatureCubeTest, LeafSplitsNeverLoseRowsUnderIncrementalInsert) {
  TableSchema schema;
  schema.sel_cardinality = {2, 2};
  schema.num_rank_dims = 2;
  Table t(schema);
  Rng rng(13);
  auto add_row = [&] {
    ASSERT_TRUE(t.AddRow({static_cast<int32_t>(rng.UniformInt(2)),
                          static_cast<int32_t>(rng.UniformInt(2))},
                         {rng.Uniform01(), rng.Uniform01()})
                    .ok());
  };
  for (int i = 0; i < 8; ++i) add_row();

  PageStore store;
  IoSession io{&store};
  SignatureCubeOptions opt;
  opt.bulk_load = false;
  opt.rtree_max_entries = 4;  // a split every few inserts
  SignatureCube cube(t, io, opt);

  TopKQuery probe;
  probe.k = 1000;  // every live row must surface
  probe.function = std::make_shared<LinearFunction>(std::vector<double>{1, 2});
  for (int i = 0; i < 120; ++i) {
    add_row();
    cube.InsertBatch({static_cast<Tid>(t.num_rows() - 1)}, &io);
    for (int32_t v = 0; v < 2; ++v) {
      probe.predicates = {{0, v}};
      ExecStats stats;
      auto res = cube.TopK(probe, &io, &stats);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      ASSERT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, probe)))
          << "row lost after insert " << i << " in cell A0=" << v;
    }
  }
}

TEST(SignatureCubeTest, EmptyCellShortCircuits) {
  Table t = MakeData(500, 2, 3, 2);
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(t, io);
  TopKQuery q;
  q.predicates = {{0, 2}, {1, 2}};
  // Find a combination that doesn't exist; if it exists, skip.
  bool exists = false;
  for (Tid i = 0; i < t.num_rows(); ++i) {
    if (t.sel(i, 0) == 2 && t.sel(i, 1) == 2) exists = true;
  }
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 1});
  ExecStats stats;
  auto res = cube.TopK(q, &io, &stats);
  ASSERT_TRUE(res.ok());
  if (!exists) EXPECT_TRUE(res->empty());
}

TEST(SignatureCubeTest, CompressedSmallerThanBaseline) {
  Table t = MakeData(10000, 3, 20, 2);
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(t, io);
  EXPECT_GT(cube.CompressedBytes(), 0u);
  EXPECT_LT(cube.CompressedBytes(), cube.BaselineBytes());
}

TEST(SignatureCubeTest, SignaturePagesAreCounted) {
  Table t = MakeData(8000, 3, 10, 2);
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(t, io);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 5;
  ExecStats stats;
  for (const auto& q : GenerateQueries(t, qspec)) {
    auto res = cube.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok());
  }
  EXPECT_GT(stats.signature_pages, 0u);
}

// -------------------------- baselines vs oracle --------------------------

TEST(BaselinesTest, TableScanMatchesBruteForce) {
  Table t = MakeData(3000);
  PageStore store;
  IoSession io{&store};
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = TableScanTopK(t, q, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q)));
  }
}

TEST(BaselinesTest, BooleanFirstMatchesBruteForce) {
  Table t = MakeData(3000);
  PageStore store;
  IoSession io{&store};
  BooleanFirst bf(t);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = bf.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q)));
  }
}

TEST(BaselinesTest, RankingFirstMatchesBruteForce) {
  Table t = MakeData(3000);
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(t, io);  // reuse its R-tree
  RankingFirst rf(t, &cube.rtree());
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = rf.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q)));
  }
}

TEST(BaselinesTest, RankMappingWithOptimalBoundsMatchesBruteForce) {
  Table t = MakeData(3000);
  PageStore store;
  IoSession io{&store};
  RankMapping rm(t, {{0, 1, 2}});
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  for (const auto& q : GenerateQueries(t, qspec)) {
    auto oracle = BruteForceTopK(t, q);
    double kth = oracle.empty() ? 1e9 : oracle.back().score;
    ExecStats stats;
    auto res = rm.TopK(q, kth, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(oracle)) << q.ToString();
  }
}

TEST(BaselinesTest, RankMappingDistanceQueries) {
  Table t = MakeData(3000);
  PageStore store;
  IoSession io{&store};
  RankMapping rm(t, {{0, 1, 2}});
  QueryWorkloadSpec qspec;
  qspec.num_queries = 8;
  qspec.kind = QueryFunctionKind::kDistance;
  for (const auto& q : GenerateQueries(t, qspec)) {
    auto oracle = BruteForceTopK(t, q);
    double kth = oracle.empty() ? 1e9 : oracle.back().score;
    ExecStats stats;
    auto res = rm.TopK(q, kth, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(oracle)) << q.ToString();
  }
}

}  // namespace
}  // namespace rankcube
