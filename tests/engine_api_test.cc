// Unit tests for the unified engine layer: registry lookup, QueryBuilder,
// shared validation (identical Status across engines for malformed queries),
// page budgets, trace hooks, ExecStats accumulation, and BatchExecutor.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/builtin_engines.h"
#include "engine/query_builder.h"
#include "engine/registry.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

Table SmallTable() {
  SyntheticSpec spec;
  spec.num_rows = 1500;
  spec.num_sel_dims = 3;
  spec.cardinality = 5;
  spec.num_rank_dims = 2;
  spec.seed = 11;
  return GenerateSynthetic(spec);
}

TEST(EngineRegistryTest, BuiltinsAreRegistered) {
  auto& registry = EngineRegistry::Global();
  for (const char* name :
       {"grid", "fragments", "signature", "signature_lossy", "table_scan",
        "boolean_first", "ranking_first", "rank_mapping", "index_merge"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_GE(registry.Names().size(), 9u);
}

TEST(EngineRegistryTest, UnknownEngineIsNotFound) {
  Table table = SmallTable();
  PageStore store;
  IoSession io{&store};
  auto r = EngineRegistry::Global().Create("no_such_engine", table, io);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  // The error names every registered key: lookups are composed
  // programmatically (planner catalogs, CLI flags), and "what exists" is
  // the answer such callers need.
  for (const std::string& name : EngineRegistry::Global().Names()) {
    EXPECT_NE(r.status().message().find(name), std::string::npos)
        << r.status().message();
  }
}

TEST(EngineRegistryTest, DuplicateRegistrationFails) {
  auto& registry = EngineRegistry::Global();
  Status s = registry.Register(
      "table_scan", [](const Table& table, IoSession&,
                       const EngineBuildOptions&)
                        -> Result<std::unique_ptr<RankingEngine>> {
        return MakeTableScanEngine(table);
      });
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(QueryBuilderTest, BuildsTheQueryModel) {
  TopKQuery q = QueryBuilder()
                    .Where(0, 3)
                    .Where(2, 1)
                    .OrderByLinear({1.0, 2.0})
                    .Limit(25)
                    .Build();
  ASSERT_EQ(q.predicates.size(), 2u);
  EXPECT_EQ(q.predicates[0], (Predicate{0, 3}));
  EXPECT_EQ(q.predicates[1], (Predicate{2, 1}));
  EXPECT_EQ(q.k, 25);
  ASSERT_NE(q.function, nullptr);
  std::vector<double> p{0.5, 0.25};
  EXPECT_DOUBLE_EQ(q.function->Evaluate(p.data()), 1.0);
}

TEST(QueryBuilderTest, OrderByL1BuildsTheL1Distance) {
  TopKQuery q = QueryBuilder()
                    .OrderByL1({2.0, 0.0}, {0.5, 0.0})
                    .Limit(3)
                    .Build();
  ASSERT_NE(q.function, nullptr);
  std::vector<double> at_target{0.5, 0.9};
  EXPECT_DOUBLE_EQ(q.function->Evaluate(at_target.data()), 0.0);
  std::vector<double> off_target{0.75, 0.9};
  EXPECT_DOUBLE_EQ(q.function->Evaluate(off_target.data()), 0.5);
  EXPECT_TRUE(q.function->convex());
}

TEST(QueryBuilderTest, BuildValidatedAcceptsAndRejectsBeforePlanning) {
  Table table = SmallTable();
  const auto& schema = table.schema();

  auto ok = QueryBuilder()
                .Where(0, 1)
                .OrderByL1({1.0, 1.0}, {0.2, 0.8})
                .Limit(5)
                .BuildValidated(schema);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().predicates.size(), 1u);
  EXPECT_EQ(ok.value().k, 5);

  // Same malformed builds ValidateQuery rejects inside Execute, rejected
  // up front with the identical code.
  auto bad_value =
      QueryBuilder().Where(0, 99).OrderByLinear({1, 1}).BuildValidated(schema);
  ASSERT_FALSE(bad_value.ok());
  EXPECT_EQ(bad_value.status().code(), Status::Code::kInvalidArgument);

  auto no_fn = QueryBuilder().Where(0, 1).Limit(5).BuildValidated(schema);
  ASSERT_FALSE(no_fn.ok());
  EXPECT_EQ(no_fn.status().code(), Status::Code::kInvalidArgument);

  auto bad_k =
      QueryBuilder().OrderByLinear({1, 1}).Limit(0).BuildValidated(schema);
  ASSERT_FALSE(bad_k.ok());
  EXPECT_EQ(bad_k.status().code(), Status::Code::kInvalidArgument);
}

TEST(ValidateQueryTest, RejectsMalformedQueries) {
  Table table = SmallTable();
  const auto& schema = table.schema();

  auto ok = QueryBuilder().Where(0, 1).OrderByLinear({1, 1}).Limit(5).Build();
  EXPECT_TRUE(ValidateQuery(ok, schema).ok());

  auto bad_k = QueryBuilder().OrderByLinear({1, 1}).Limit(0).Build();
  EXPECT_EQ(ValidateQuery(bad_k, schema).code(),
            Status::Code::kInvalidArgument);

  auto no_fn = QueryBuilder().Where(0, 1).Limit(5).Build();
  EXPECT_EQ(ValidateQuery(no_fn, schema).code(),
            Status::Code::kInvalidArgument);

  auto bad_dim =
      QueryBuilder().Where(9, 0).OrderByLinear({1, 1}).Limit(5).Build();
  EXPECT_EQ(ValidateQuery(bad_dim, schema).code(),
            Status::Code::kInvalidArgument);

  auto bad_value =
      QueryBuilder().Where(0, 99).OrderByLinear({1, 1}).Limit(5).Build();
  EXPECT_EQ(ValidateQuery(bad_value, schema).code(),
            Status::Code::kInvalidArgument);

  auto dup = QueryBuilder()
                 .Where(1, 0)
                 .Where(1, 2)
                 .OrderByLinear({1, 1})
                 .Limit(5)
                 .Build();
  EXPECT_EQ(ValidateQuery(dup, schema).code(),
            Status::Code::kInvalidArgument);

  auto wrong_dims =
      QueryBuilder().OrderByLinear({1, 1, 1}).Limit(5).Build();
  EXPECT_EQ(ValidateQuery(wrong_dims, schema).code(),
            Status::Code::kInvalidArgument);
}

// The error-consistency contract: a malformed query fails with the same
// Status code on every registered engine — the seed's baselines used to
// return silently empty vectors instead.
TEST(EngineExecuteTest, MalformedQueryFailsIdenticallyOnEveryEngine) {
  Table table = SmallTable();
  PageStore store;
  IoSession io{&store};
  auto malformed =
      QueryBuilder().Where(0, 999).OrderByLinear({1, 1}).Limit(5).Build();

  for (const std::string& name : EngineRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    auto engine = EngineRegistry::Global().Create(name, table, io);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ExecContext ctx;
    ctx.io = &io;
    auto r = (*engine)->Execute(malformed, ctx);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST(EngineExecuteTest, PredicatesRejectedWhenUnsupported) {
  Table table = SmallTable();
  PageStore store;
  IoSession io{&store};
  auto engine = EngineRegistry::Global().Create("index_merge", table, io);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE((*engine)->SupportsPredicates());

  ExecContext ctx;
  ctx.io = &io;
  auto q = QueryBuilder().Where(0, 1).OrderByLinear({1, 1}).Limit(5).Build();
  auto r = (*engine)->Execute(q, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);

  auto no_preds = QueryBuilder().OrderByLinear({1, 1}).Limit(5).Build();
  EXPECT_TRUE((*engine)->Execute(no_preds, ctx).ok());
}

TEST(EngineExecuteTest, MissingSessionIsInvalidArgument) {
  Table table = SmallTable();
  PageStore store;
  IoSession io{&store};
  auto engine = EngineRegistry::Global().Create("table_scan", table, io);
  ASSERT_TRUE(engine.ok());
  ExecContext ctx;  // no I/O session
  auto q = QueryBuilder().OrderByLinear({1, 1}).Limit(5).Build();
  auto r = (*engine)->Execute(q, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(EngineExecuteTest, PageBudgetIsEnforced) {
  Table table = SmallTable();
  PageStore store;
  IoSession io{&store};
  auto engine = EngineRegistry::Global().Create("table_scan", table, io);
  ASSERT_TRUE(engine.ok());
  auto q = QueryBuilder().OrderByLinear({1, 1}).Limit(5).Build();

  ExecContext tight;
  tight.io = &io;
  tight.page_budget = 1;  // a full scan reads far more than one page
  auto r = (*engine)->Execute(q, tight);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kOutOfRange);

  ExecContext roomy;
  roomy.io = &io;
  roomy.page_budget = 1u << 20;
  EXPECT_TRUE((*engine)->Execute(q, roomy).ok());
}

TEST(EngineExecuteTest, TraceHookFires) {
  Table table = SmallTable();
  PageStore store;
  IoSession io{&store};
  auto engine = EngineRegistry::Global().Create("table_scan", table, io);
  ASSERT_TRUE(engine.ok());

  std::vector<std::string> lines;
  ExecContext ctx;
  ctx.io = &io;
  ctx.trace = [&lines](const std::string& line) { lines.push_back(line); };
  auto q = QueryBuilder().OrderByLinear({1, 1}).Limit(5).Build();
  ASSERT_TRUE((*engine)->Execute(q, ctx).ok());
  ASSERT_EQ(lines.size(), 2u);  // begin + end
  EXPECT_NE(lines[0].find("table_scan"), std::string::npos);
  EXPECT_NE(lines[1].find("pages"), std::string::npos);
}

TEST(ExecStatsTest, PlusEqualsAccumulatesEveryCounter) {
  ExecStats a;
  a.time_ms = 1.5;
  a.pages_read = 10;
  a.tuples_evaluated = 3;
  a.states_generated = 7;
  a.states_examined = 5;
  a.peak_heap = 4;
  a.signature_pages = 2;
  a.signature_ms = 0.25;

  ExecStats b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.time_ms, 3.0);
  EXPECT_EQ(b.pages_read, 20u);
  EXPECT_EQ(b.tuples_evaluated, 6u);
  EXPECT_EQ(b.states_generated, 14u);
  EXPECT_EQ(b.states_examined, 10u);
  EXPECT_EQ(b.peak_heap, 8u);
  EXPECT_EQ(b.signature_pages, 4u);
  EXPECT_DOUBLE_EQ(b.signature_ms, 0.5);
}

TEST(BatchExecutorTest, AggregatesStatsAndCountsFailures) {
  Table table = SmallTable();
  PageStore store;
  IoSession io{&store};
  auto engine = EngineRegistry::Global().Create("boolean_first", table, io);
  ASSERT_TRUE(engine.ok());

  std::vector<TopKQuery> workload;
  workload.push_back(QueryBuilder()
                         .Where(0, table.sel(5, 0))
                         .OrderByLinear({1, 1})
                         .Limit(5)
                         .Build());
  workload.push_back(QueryBuilder()
                         .Where(1, table.sel(9, 1))
                         .OrderByLinear({1, 2})
                         .Limit(3)
                         .Build());
  // One malformed query: counted as failed, not fatal.
  workload.push_back(
      QueryBuilder().Where(0, 999).OrderByLinear({1, 1}).Limit(5).Build());

  ExecContext ctx;
  ctx.io = &io;
  BatchExecutor batch(engine->get());
  auto report = batch.Run(workload, ctx);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report.value().num_queries, 3u);
  EXPECT_EQ(report.value().executed, 3u);
  EXPECT_EQ(report.value().failed, 1u);
  EXPECT_EQ(report.value().succeeded(), 2u);
  EXPECT_EQ(report.value().first_error.code(),
            Status::Code::kInvalidArgument);
  EXPECT_GT(report.value().total.tuples_evaluated, 0u);
  EXPECT_GT(report.value().AvgMs(), 0.0);
  EXPECT_TRUE(report.value().results.empty());  // keep_results defaults off

  ExecContext stop_ctx;
  stop_ctx.io = &io;
  BatchExecutor strict(engine->get(), {.stop_on_error = true});
  std::vector<TopKQuery> bad_first{workload[2], workload[0]};
  auto strict_report = strict.Run(bad_first, stop_ctx);
  ASSERT_TRUE(strict_report.ok());
  EXPECT_EQ(strict_report.value().num_queries, 2u);
  EXPECT_EQ(strict_report.value().executed, 1u);  // stop cut the batch short
  EXPECT_EQ(strict_report.value().failed, 1u);
  EXPECT_EQ(strict_report.value().succeeded(), 0u);
  EXPECT_EQ(strict_report.value().total.tuples_evaluated, 0u);
}

}  // namespace
}  // namespace rankcube
