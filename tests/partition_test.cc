// Partitioned ranking-cube tests. The contract under test:
//  (a) scatter-gather top-k is tuple-identical to one unpartitioned db
//      holding the union of the rows — for every engine, every partition
//      count, boundary-straddling queries, and partitions mid-maintenance
//      (un-compacted delta overlays);
//  (b) the scatter prunes: predicate ∩ partition bounds drops partitions
//      before planning, and the S_k threshold stops the gather early —
//      without ever changing an answer;
//  (c) DropPartition is O(1) in partition size (a manifest commit, no page
//      I/O proportional to the data), concurrent queries see every
//      partition in full or not at all, and a kill -9 at any filesystem op
//      across a multi-partition data_dir never loses an acked write;
//  (d) per-partition durability counters (WAL records since checkpoint,
//      checkpoint generation, backing reads) surface through Stats, and the
//      PARTITION_* wire verbs round-trip end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "engine/query_builder.h"
#include "gen/synthetic.h"
#include "partition/partition_manifest.h"
#include "partition/partitioned_db.h"
#include "planner/rank_cube_db.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/fault_fs.h"

namespace rankcube {
namespace {

// ---------------------------------------------------------------------------
// Harness: a partitioned db and its unpartitioned oracle over the same rows.
//
// Seed tables are concatenated into the oracle in partition-creation order,
// so a row's global oracle tid is offset[partition seq] + local tid — which
// also makes the merge tie-break (score, seq, tid) agree with the oracle's
// (score, tid) whenever scores are distinct.

constexpr int32_t kPartitionDomain = 16;  ///< cardinality of the routing dim

TableSchema TestSchema() {
  TableSchema schema;
  schema.sel_cardinality = {kPartitionDomain, 6, 4};
  schema.num_rank_dims = 2;
  return schema;
}

/// Splits [0, kPartitionDomain) into `n` near-equal half-open ranges.
std::vector<PartitionRange> SplitRanges(int n) {
  std::vector<PartitionRange> out;
  int32_t lo = 0;
  for (int i = 0; i < n; ++i) {
    int32_t hi = static_cast<int32_t>((kPartitionDomain * (i + 1)) / n);
    out.push_back({lo, hi});
    lo = hi;
  }
  return out;
}

struct Pair {
  std::unique_ptr<PartitionedDb> pdb;
  std::unique_ptr<RankCubeDb> oracle;
  std::vector<std::string> names;  ///< creation order
  /// (partition name, local tid) -> oracle tid; extended by InsertBoth.
  std::map<std::pair<std::string, Tid>, Tid> to_global;
};

Pair MakePair(int num_partitions, uint64_t rows, int scatter_threads = 4) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = 3;
  spec.sel_cardinalities = {kPartitionDomain, 6, 4};
  spec.num_rank_dims = 2;
  spec.seed = 123;
  Table base = GenerateSynthetic(spec);

  PartitionedDb::Options popts;
  popts.schema = TestSchema();
  popts.partition_dim = 0;
  popts.scatter_threads = scatter_threads;
  Pair pair;
  pair.pdb = PartitionedDb::Open(std::move(popts)).value();

  Table oracle_table(TestSchema());
  std::vector<int32_t> sel(3);
  std::vector<double> rank(2);
  std::vector<PartitionRange> ranges = SplitRanges(num_partitions);
  for (size_t p = 0; p < ranges.size(); ++p) {
    std::string name = "p" + std::to_string(p);
    Table seed(TestSchema());
    for (Tid row = 0; row < static_cast<Tid>(base.num_rows()); ++row) {
      if (!ranges[p].Contains(base.sel(row, 0))) continue;
      for (int d = 0; d < 3; ++d) sel[d] = base.sel(row, d);
      for (int d = 0; d < 2; ++d) rank[d] = base.rank(row, d);
      pair.to_global[{name, static_cast<Tid>(seed.num_rows())}] =
          static_cast<Tid>(oracle_table.num_rows());
      EXPECT_TRUE(seed.AddRow(sel, rank).ok());
      EXPECT_TRUE(oracle_table.AddRow(sel, rank).ok());
    }
    Status s = pair.pdb->CreatePartition(name, ranges[p], std::move(seed));
    EXPECT_TRUE(s.ok()) << s.ToString();
    pair.names.push_back(name);
  }
  pair.oracle = std::make_unique<RankCubeDb>(std::move(oracle_table));
  return pair;
}

/// Routes one row through both sides and records the tid mapping.
void InsertBoth(Pair* pair, const std::vector<int32_t>& sel,
                const std::vector<double>& rank) {
  auto ref = pair->pdb->Insert(sel, rank);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  auto global = pair->oracle->Insert(sel, rank);
  ASSERT_TRUE(global.ok()) << global.status().ToString();
  pair->to_global[{ref.value().partition, ref.value().tid}] = global.value();
}

/// Maps a scatter answer onto oracle tids (fails the test on an unknown
/// (partition, tid) — that would mean the scatter invented a row).
std::vector<ScoredTuple> ToGlobal(const Pair& pair,
                                  const PartitionedTopK& top) {
  std::vector<ScoredTuple> out;
  for (const PartitionedTuple& t : top.tuples) {
    auto it = pair.to_global.find({t.partition, t.tid});
    EXPECT_NE(it, pair.to_global.end())
        << "unknown row " << t.partition << "/" << t.tid;
    if (it == pair.to_global.end()) continue;
    out.push_back({it->second, t.score});
  }
  return out;
}

std::vector<ScoredTuple> OracleAnswer(const Pair& pair, const TopKQuery& q) {
  QueryOptions opts;
  opts.force_engine = "table_scan";
  auto r = pair.oracle->Query(q, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value().tuples : std::vector<ScoredTuple>{};
}

/// Boundary-straddling workload: predicates on NON-partition dims (every
/// query's answer set crosses partition boundaries), plus a no-predicate
/// query and one k larger than any single partition.
std::vector<TopKQuery> StraddlingQueries() {
  std::vector<TopKQuery> qs;
  qs.push_back(QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(10).Build());
  qs.push_back(QueryBuilder()
                   .Where(1, 3)
                   .OrderByLinear({1.0, 2.0})
                   .Limit(7)
                   .Build());
  qs.push_back(QueryBuilder()
                   .Where(1, 2)
                   .Where(2, 1)
                   .OrderByDistance({1.0, 1.0}, {0.4, 0.6})
                   .Limit(5)
                   .Build());
  qs.push_back(QueryBuilder().OrderByLinear({2.0, 0.5}).Limit(64).Build());
  return qs;
}

// ---------------------------------------------------------------------------
// (a) Oracle parity.

TEST(PartitionParityTest, EveryEngineEveryPartitionCountMatchesOracle) {
  for (int nparts : {1, 3, 16}) {
    SCOPED_TRACE("partitions: " + std::to_string(nparts));
    Pair pair = MakePair(nparts, 2400);
    for (const std::string& engine : pair.oracle->EngineNames()) {
      SCOPED_TRACE("engine: " + engine);
      // index_merge takes no predicates; everything else also gets the
      // predicate queries (incl. one on the partition dim itself).
      std::vector<TopKQuery> queries;
      queries.push_back(
          QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(10).Build());
      if (engine != "index_merge") {
        for (TopKQuery& q : StraddlingQueries()) queries.push_back(q);
        queries.push_back(QueryBuilder()
                              .Where(0, 5)  // partition dim: exercises pruning
                              .OrderByLinear({1.0, 1.0})
                              .Limit(6)
                              .Build());
      }
      QueryOptions force;
      force.force_engine = engine;
      for (const TopKQuery& q : queries) {
        SCOPED_TRACE(q.ToString());
        auto scattered = pair.pdb->Query(q, force);
        ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
        EXPECT_EQ(ToGlobal(pair, scattered.value()), OracleAnswer(pair, q));
        // The accounting always covers every partition exactly once.
        const ScatterStats& sc = scattered.value().scatter;
        EXPECT_EQ(sc.queried + sc.pruned_by_predicate + sc.skipped_empty +
                      sc.pruned_by_bound,
                  sc.partitions);
      }
    }
  }
}

TEST(PartitionParityTest, PlannerRoutedScatterMatchesOracle) {
  Pair pair = MakePair(3, 2400);
  for (const TopKQuery& q : StraddlingQueries()) {
    SCOPED_TRACE(q.ToString());
    auto scattered = pair.pdb->Query(q);
    ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
    EXPECT_EQ(ToGlobal(pair, scattered.value()), OracleAnswer(pair, q));
  }
}

// Mid-maintenance: inserts and deletes land after the seed build, so each
// partition answers through its delta overlay until Compact absorbs it.
// Parity must hold in both states.
TEST(PartitionParityTest, MidMaintenanceDeltaOverlayMatchesOracle) {
  Pair pair = MakePair(3, 1200);
  // Warm some structures so the overlay path (structure + delta) runs.
  auto warm = pair.pdb->Query(
      QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(5).Build());
  ASSERT_TRUE(warm.ok());

  Rng rng(2026);
  for (int i = 0; i < 150; ++i) {
    std::vector<int32_t> sel = {
        static_cast<int32_t>(rng.UniformInt(kPartitionDomain)),
        static_cast<int32_t>(rng.UniformInt(6)),
        static_cast<int32_t>(rng.UniformInt(4))};
    std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
    InsertBoth(&pair, sel, rank);
  }
  // Tombstone a handful of seed rows through both sides.
  int deleted = 0;
  for (const auto& [key, global] : pair.to_global) {
    if (global % 97 != 0) continue;
    ASSERT_TRUE(pair.pdb->Delete(key.first, key.second).ok());
    ASSERT_TRUE(pair.oracle->Delete(global).ok());
    if (++deleted == 8) break;
  }

  for (const TopKQuery& q : StraddlingQueries()) {
    SCOPED_TRACE("pre-compact: " + q.ToString());
    auto scattered = pair.pdb->Query(q);
    ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
    EXPECT_EQ(ToGlobal(pair, scattered.value()), OracleAnswer(pair, q));
  }

  ASSERT_TRUE(pair.pdb->Compact().ok());
  ASSERT_TRUE(pair.oracle->Compact().ok());
  for (const TopKQuery& q : StraddlingQueries()) {
    SCOPED_TRACE("post-compact: " + q.ToString());
    auto scattered = pair.pdb->Query(q);
    ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
    EXPECT_EQ(ToGlobal(pair, scattered.value()), OracleAnswer(pair, q));
  }
}

// ---------------------------------------------------------------------------
// (b) Pruning.

TEST(PartitionPruningTest, PartitionDimPredicateQueriesExactlyOnePartition) {
  Pair pair = MakePair(16, 2400);
  TopKQuery q = QueryBuilder()
                    .Where(0, 9)
                    .OrderByLinear({1.0, 1.0})
                    .Limit(8)
                    .Build();
  auto r = pair.pdb->Query(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().scatter.partitions, 16u);
  EXPECT_EQ(r.value().scatter.queried, 1u);
  EXPECT_EQ(r.value().scatter.pruned_by_predicate, 15u);
  EXPECT_EQ(ToGlobal(pair, r.value()), OracleAnswer(pair, q));

  auto plan = pair.pdb->ExplainScatter(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("pruned=predicate"), std::string::npos);

  // A schema-valid value no partition covers (its partition was dropped):
  // clean empty answer, nothing queried.
  ASSERT_TRUE(pair.pdb->DropPartition("p9").ok());
  TopKQuery miss = q;  // Where(0, 9) — p9 owned exactly [9, 10)
  auto empty = pair.pdb->Query(miss);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty.value().tuples.empty());
  EXPECT_EQ(empty.value().scatter.queried, 0u);
}

// Partitions whose rank values live in disjoint bands: the best partition
// alone fills the top-k, and its S_k beats every other partition's
// best-possible bound, so the gather stops without touching them — and the
// answer is still exactly the oracle's.
TEST(PartitionPruningTest, ScoreBoundEarlyTerminationSkipsColdPartitions) {
  TableSchema schema;
  schema.sel_cardinality = {4, 3};
  schema.num_rank_dims = 2;
  PartitionedDb::Options popts;
  popts.schema = schema;
  popts.partition_dim = 0;
  popts.scatter_threads = 1;  // sequential: maximal early termination
  auto pdb = PartitionedDb::Open(std::move(popts)).value();

  Table oracle_table(schema);
  std::map<std::pair<std::string, Tid>, Tid> to_global;
  Rng rng(7);
  for (int p = 0; p < 4; ++p) {
    std::string name = "band" + std::to_string(p);
    Table seed(schema);
    for (int i = 0; i < 50; ++i) {
      std::vector<int32_t> sel = {p, static_cast<int32_t>(rng.UniformInt(3))};
      // Band p: both rank coords in [0.25p, 0.25p + 0.2] — scores under
      // linear {1,1} are disjoint across bands.
      std::vector<double> rank = {0.25 * p + 0.2 * rng.Uniform01(),
                                  0.25 * p + 0.2 * rng.Uniform01()};
      to_global[{name, static_cast<Tid>(seed.num_rows())}] =
          static_cast<Tid>(oracle_table.num_rows());
      ASSERT_TRUE(seed.AddRow(sel, rank).ok());
      ASSERT_TRUE(oracle_table.AddRow(sel, rank).ok());
    }
    ASSERT_TRUE(
        pdb->CreatePartition(name, {static_cast<int32_t>(p),
                                    static_cast<int32_t>(p) + 1},
                             std::move(seed))
            .ok());
  }
  RankCubeDb oracle(std::move(oracle_table));

  TopKQuery q = QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(5).Build();
  auto r = pdb->Query(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r.value().scatter.pruned_by_bound, 1u);
  EXPECT_LT(r.value().scatter.queried, 4u);

  QueryOptions oracle_opts;
  oracle_opts.force_engine = "table_scan";
  auto truth = oracle.Query(q, oracle_opts);
  ASSERT_TRUE(truth.ok());
  std::vector<ScoredTuple> got;
  for (const PartitionedTuple& t : r.value().tuples) {
    auto it = to_global.find({t.partition, t.tid});
    ASSERT_NE(it, to_global.end());
    got.push_back({it->second, t.score});
  }
  EXPECT_EQ(got, truth.value().tuples);
}

// ---------------------------------------------------------------------------
// (c) Retention, concurrency, crash recovery.

namespace {
/// Builds a durable single-partition db over `fs` and returns the fs
/// mutation ops one DropPartition costs. The partition holds `rows` rows.
int64_t DropCost(FaultFs* fs, uint64_t rows) {
  TableSchema schema;
  schema.sel_cardinality = {4, 4};
  schema.num_rank_dims = 2;
  PartitionedDb::Options popts;
  popts.schema = schema;
  popts.partition_dim = 0;
  popts.data_dir = "/db";
  popts.fs = fs;
  popts.db.engines = {"table_scan"};
  auto pdb = PartitionedDb::Open(std::move(popts)).value();

  Table seed(schema);
  Rng rng(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(seed.AddRow({static_cast<int32_t>(rng.UniformInt(4)),
                             static_cast<int32_t>(rng.UniformInt(4))},
                            {rng.Uniform01(), rng.Uniform01()})
                    .ok());
  }
  EXPECT_TRUE(pdb->CreatePartition("victim", {0, 4}, std::move(seed)).ok());

  fs->SetPlan(FaultPlan{});  // reset the op counter
  EXPECT_TRUE(pdb->DropPartition("victim").ok());
  EXPECT_TRUE(pdb->ListPartitions().empty());
  // The files are actually gone (deferred GC ran), yet none of that GC
  // counted as charged I/O — FaultFs charges appends and syncs only, which
  // is exactly the point: a drop writes the manifest and nothing else.
  auto left = fs->ListDir("/db/victim");
  EXPECT_TRUE(!left.ok() || left.value().empty());
  return fs->ops();
}
}  // namespace

TEST(PartitionRetentionTest, DropCostIsIndependentOfPartitionSize) {
  FaultFs small_fs;
  FaultFs large_fs;
  int64_t small = DropCost(&small_fs, 30);
  int64_t large = DropCost(&large_fs, 3000);
  EXPECT_GT(small, 0);
  EXPECT_EQ(small, large) << "DropPartition charged I/O proportional to "
                             "partition size";
}

TEST(PartitionRetentionTest, DropIsWholePartitionOrNoneUnderConcurrentQueries) {
  TableSchema schema;
  schema.sel_cardinality = {3, 4};
  schema.num_rank_dims = 2;
  PartitionedDb::Options popts;
  popts.schema = schema;
  popts.partition_dim = 0;
  auto pdb = PartitionedDb::Open(std::move(popts)).value();

  // "hot" owns the whole top-k (scores < 0.2); keepers sit above 1.0.
  Rng rng(11);
  auto fill = [&](const std::string& name, int32_t key, double base) {
    Table seed(schema);
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(seed.AddRow({key, static_cast<int32_t>(rng.UniformInt(4))},
                              {base + 0.05 * rng.Uniform01(),
                               base + 0.05 * rng.Uniform01()})
                      .ok());
    }
    ASSERT_TRUE(pdb->CreatePartition(name, {key, key + 1}, std::move(seed))
                    .ok());
  };
  fill("keep0", 0, 0.6);
  fill("keep1", 1, 0.8);
  fill("hot", 2, 0.01);

  const TopKQuery q =
      QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(10).Build();
  auto before = pdb->Query(q);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().tuples[0].partition, "hot");

  std::atomic<bool> start{false};
  std::vector<std::thread> readers;
  std::vector<std::vector<PartitionedTopK>> seen(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 60; ++i) {
        auto r = pdb->Query(q);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        seen[t].push_back(std::move(r).value());
      }
    });
  }
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::microseconds(300));
  ASSERT_TRUE(pdb->DropPartition("hot").ok());
  for (std::thread& t : readers) t.join();

  auto after = pdb->Query(q);
  ASSERT_TRUE(after.ok());
  for (const PartitionedTuple& t : after.value().tuples) {
    EXPECT_NE(t.partition, "hot");
  }
  // Every concurrent answer is exactly the pre-drop or the post-drop
  // result — never a blend (a query observes the whole partition or none).
  for (const auto& per_thread : seen) {
    for (const PartitionedTopK& r : per_thread) {
      EXPECT_TRUE(r.tuples == before.value().tuples ||
                  r.tuples == after.value().tuples)
          << "query observed a partially-dropped partition";
    }
  }
}

TEST(PartitionRecoveryTest, KillPointSweepOverMultiPartitionDataDir) {
  TableSchema schema;
  schema.sel_cardinality = {16, 4};
  schema.num_rank_dims = 2;
  auto open = [&](FaultFs* fs) {
    PartitionedDb::Options popts;
    popts.schema = schema;
    popts.partition_dim = 0;
    popts.data_dir = "/db";
    popts.fs = fs;
    popts.fsync = FsyncPolicy::kAlways;
    popts.db.engines = {"table_scan"};
    return PartitionedDb::Open(std::move(popts));
  };
  // Deterministic script: create two partitions, interleave inserts into
  // both, then drop one — every durable transition a retention deployment
  // performs.
  struct Acked {
    bool create_a = false, create_b = false, drop_b = false;
    uint64_t inserts_a = 0, inserts_b = 0;
  };
  auto run_script = [&](PartitionedDb* db) {
    Acked acked;
    Rng rng(5);
    acked.create_a = db->CreatePartition("a", {0, 8}).ok();
    if (acked.create_a) {
      acked.create_b = db->CreatePartition("b", {8, 16}).ok();
    }
    for (int i = 0; i < 12 && acked.create_b; ++i) {
      bool into_a = (i % 2) == 0;
      std::vector<int32_t> sel = {
          static_cast<int32_t>(into_a ? rng.UniformInt(8)
                                      : 8 + rng.UniformInt(8)),
          static_cast<int32_t>(rng.UniformInt(4))};
      if (!db->Insert(sel, {rng.Uniform01(), rng.Uniform01()}).ok()) break;
      (into_a ? acked.inserts_a : acked.inserts_b)++;
    }
    if (acked.create_b) acked.drop_b = db->DropPartition("b").ok();
    return acked;
  };

  // Dry run: total fs ops of the full script.
  int64_t total_ops = 0;
  {
    FaultFs fs;
    auto db = open(&fs);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    fs.SetPlan(FaultPlan{});
    Acked all = run_script(db.value().get());
    ASSERT_TRUE(all.drop_b);
    ASSERT_EQ(all.inserts_a + all.inserts_b, 12u);
    total_ops = fs.ops();
  }
  ASSERT_GT(total_ops, 0);

  for (int64_t kill = 0; kill < total_ops; ++kill) {
    SCOPED_TRACE("kill=" + std::to_string(kill));
    FaultFs fs;
    auto db = open(&fs);
    ASSERT_TRUE(db.ok());
    FaultPlan plan;
    plan.crash_after_ops = kill;
    fs.SetPlan(plan);
    Acked acked = run_script(db.value().get());
    db.value().reset();
    fs.Crash();  // power cut + reboot

    auto recovered = open(&fs);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    std::map<std::string, PartitionInfo> parts;
    for (PartitionInfo& info : recovered.value()->ListPartitions()) {
      parts[info.name] = std::move(info);
    }
    // Acked creates exist; an acked drop is gone for good.
    if (acked.create_a) ASSERT_EQ(parts.count("a"), 1u);
    if (acked.drop_b) EXPECT_EQ(parts.count("b"), 0u);
    // fsync=always: an acked insert IS durable, and an unacked one never
    // half-applies (the failed fs op aborted it before the WAL committed).
    if (acked.create_a) {
      EXPECT_EQ(parts["a"].rows, acked.inserts_a);
    }
    if (parts.count("b") != 0) {
      EXPECT_EQ(parts["b"].rows, acked.inserts_b);
    }
    // The recovered db still answers scatter queries.
    auto q = recovered.value()->Query(
        QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(5).Build());
    ASSERT_TRUE(q.ok()) << q.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// (d) Durability counters and the wire protocol.

TEST(PartitionStatsTest, DurabilityCountersTrackWalAndCheckpoints) {
  FaultFs fs;
  TableSchema schema;
  schema.sel_cardinality = {4, 4};
  schema.num_rank_dims = 2;
  PartitionedDb::Options popts;
  popts.schema = schema;
  popts.partition_dim = 0;
  popts.data_dir = "/db";
  popts.fs = &fs;
  popts.db.engines = {"table_scan"};
  auto pdb = PartitionedDb::Open(std::move(popts)).value();
  ASSERT_TRUE(pdb->CreatePartition("w", {0, 4}).ok());

  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pdb->Insert({static_cast<int32_t>(rng.UniformInt(4)),
                             static_cast<int32_t>(rng.UniformInt(4))},
                            {rng.Uniform01(), rng.Uniform01()})
                    .ok());
  }
  auto stats = pdb->PartitionStats("w");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().durable);
  EXPECT_EQ(stats.value().wal_records, 5u);  // recovery exposure
  EXPECT_EQ(stats.value().checkpoint_generation, 1u);  // the seed checkpoint

  ASSERT_TRUE(pdb->Checkpoint().ok());
  stats = pdb->PartitionStats("w");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().wal_records, 0u);  // exposure reset
  EXPECT_EQ(stats.value().checkpoint_generation, 2u);

  ASSERT_TRUE(pdb->Compact().ok());
  stats = pdb->PartitionStats("w");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().checkpoint_generation, 3u);

  // The aggregate view flattens the same counters per partition.
  std::string text = pdb->Stats().ToString();
  EXPECT_NE(text.find("partition.w.wal_records=0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("partition.w.checkpoint_generation=3"),
            std::string::npos)
      << text;

  // Reopen: recovery reads the checkpoints back (backing_reads) and the
  // generation survives.
  pdb.reset();
  PartitionedDb::Options reopen;
  reopen.schema = schema;
  reopen.partition_dim = 0;
  reopen.data_dir = "/db";
  reopen.fs = &fs;
  reopen.db.engines = {"table_scan"};
  auto again = PartitionedDb::Open(std::move(reopen)).value();
  stats = again->PartitionStats("w");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().checkpoint_generation, 3u);
  EXPECT_EQ(stats.value().rows, 5u);
  // backing_reads counts verified checkpoint preads at query time: a cold
  // query after reopen must hit the backing file.
  auto cold = again->Query(
      QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(3).Build());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  stats = again->PartitionStats("w");
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().backing_reads, 0u);
}

class PartitionServerTest : public ::testing::Test {
 protected:
  void StartPartitioned() {
    TableSchema schema;
    schema.sel_cardinality = {8, 4};
    schema.num_rank_dims = 2;
    PartitionedDb::Options popts;
    popts.schema = schema;
    popts.partition_dim = 0;
    pdb_ = PartitionedDb::Open(std::move(popts)).value();
    server_ = std::make_unique<RankCubeServer>(pdb_.get(),
                                               RankCubeServer::Options{});
    Status s = server_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  RankCubeClient Connect() {
    auto client = RankCubeClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<PartitionedDb> pdb_;
  std::unique_ptr<RankCubeServer> server_;
};

TEST_F(PartitionServerTest, PartitionVerbsRoundTripEndToEnd) {
  StartPartitioned();
  RankCubeClient client = Connect();

  ASSERT_TRUE(client.PartitionCreate("w0", 0, 4).value().ok());
  ASSERT_TRUE(client.PartitionCreate("w1", 4, 8).value().ok());
  auto dup = client.PartitionCreate("w0", 0, 4);
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(dup.value().ok());  // duplicate name is a typed error

  // Inserts route by the partition dim; the response names the home.
  Rng rng(17);
  int in_w0 = 0;
  for (int i = 0; i < 40; ++i) {
    int32_t v = static_cast<int32_t>(rng.UniformInt(8));
    auto resp = client.Insert({v, static_cast<int32_t>(rng.UniformInt(4))},
                              {rng.Uniform01(), rng.Uniform01()});
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp.value().ok()) << resp.value().message;
    ASSERT_EQ(resp.value().lines.size(), 2u);
    std::string expect = v < 4 ? "partition=w0" : "partition=w1";
    EXPECT_EQ(resp.value().lines[1], expect);
    if (v < 4) ++in_w0;
  }

  // QueryTuples tolerates the third (partition) token; the raw lines
  // carry it.
  WireQuerySpec spec;
  spec.k = 5;
  spec.order = "linear:1,1";
  auto tuples = client.QueryTuples(spec);
  ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
  EXPECT_EQ(tuples.value().size(), 5u);
  auto raw = client.Query(spec);
  ASSERT_TRUE(raw.ok());
  ASSERT_EQ(raw.value().lines.size(), 6u);  // head + 5 tuples
  EXPECT_NE(raw.value().lines[0].find("engine=scatter"), std::string::npos);
  for (size_t i = 1; i < raw.value().lines.size(); ++i) {
    const std::string& line = raw.value().lines[i];
    size_t last_sp = line.rfind(' ');
    std::string partition = line.substr(last_sp + 1);
    EXPECT_TRUE(partition == "w0" || partition == "w1") << line;
  }

  // PARTITION_LIST reflects both partitions with their row counts.
  auto list = client.PartitionList();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().lines.size(), 2u);
  EXPECT_NE(list.value().lines[0].find("partition=w0 range=[0,4)"),
            std::string::npos);
  EXPECT_NE(list.value().lines[0].find("rows=" + std::to_string(in_w0)),
            std::string::npos);

  // Per-partition STATS exposes the partition's own counters.
  auto pstats = client.PartitionStats("w0");
  ASSERT_TRUE(pstats.ok());
  ASSERT_TRUE(pstats.value().ok());
  bool saw_rows = false;
  for (const std::string& line : pstats.value().lines) {
    if (line == "rows=" + std::to_string(in_w0)) saw_rows = true;
  }
  EXPECT_TRUE(saw_rows);

  // Partitioned DELETE addresses (partition, tid); bare DELETE is refused.
  auto bare = client.Delete(0);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().code, WireCode::kBadRequest);
  ASSERT_TRUE(client.DeleteIn("w0", 0).value().ok());

  // Drop w1, then its key range comes back empty but queries still work.
  ASSERT_TRUE(client.PartitionDrop("w1").value().ok());
  WireQuerySpec in_dropped;
  in_dropped.k = 3;
  in_dropped.order = "linear:1,1";
  in_dropped.where = {{0, 6}};
  auto gone = client.QueryTuples(in_dropped);
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  EXPECT_TRUE(gone.value().empty());
}

TEST(PartitionServerModeTest, PartitionVerbsRejectedOnUnpartitionedServer) {
  SyntheticSpec spec;
  spec.num_rows = 200;
  spec.num_sel_dims = 2;
  spec.cardinality = 4;
  spec.num_rank_dims = 2;
  spec.seed = 5;
  RankCubeDb db(GenerateSynthetic(spec));
  RankCubeServer server(&db, RankCubeServer::Options{});
  ASSERT_TRUE(server.Start().ok());
  auto client = RankCubeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto resp = client.value().PartitionList();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().code, WireCode::kNotSupported);
}

}  // namespace
}  // namespace rankcube
