// Engine-parity suite: every engine in the EngineRegistry answers a shared
// generated workload through the one polymorphic interface, and each result
// set must match the table_scan oracle tuple-for-tuple. This is the
// executable form of the thesis's interchangeability claim.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/registry.h"
#include "gen/queries.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

struct Fixture {
  Table table;
  PageStore store;
  IoSession io{&store};

  Fixture() : table(MakeTable()) {}

  static Table MakeTable() {
    SyntheticSpec spec;
    spec.num_rows = 4000;
    spec.num_sel_dims = 3;
    spec.cardinality = 6;
    spec.num_rank_dims = 2;
    spec.seed = 77;
    return GenerateSynthetic(spec);
  }

  std::vector<TopKQuery> Workload(int num_predicates) {
    QueryWorkloadSpec spec;
    spec.num_queries = 8;
    spec.num_predicates = num_predicates;
    spec.num_rank_used = 2;
    spec.k = 7;
    spec.seed = 4242;
    return GenerateQueries(table, spec);
  }
};

TEST(EngineParityTest, EveryRegisteredEngineMatchesTableScanOracle) {
  Fixture fx;
  auto& registry = EngineRegistry::Global();

  auto oracle_engine = registry.Create("table_scan", fx.table, fx.io);
  ASSERT_TRUE(oracle_engine.ok()) << oracle_engine.status().ToString();

  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE("engine: " + name);
    auto engine = registry.Create(name, fx.table, fx.io);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    // Engines without boolean-predicate support (index_merge) get the same
    // workload minus selections; the oracle sees identical queries either
    // way, so results must still agree tuple-for-tuple.
    auto workload =
        fx.Workload((*engine)->SupportsPredicates() ? 2 : 0);
    ASSERT_FALSE(workload.empty());

    for (const TopKQuery& query : workload) {
      SCOPED_TRACE(query.ToString());
      ExecContext ctx;
      ctx.io = &fx.io;
      auto got = (*engine)->Execute(query, ctx);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      auto want = (*oracle_engine)->Execute(query, ctx);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      EXPECT_EQ(got.value().tuples, want.value().tuples);
    }
  }
}

TEST(EngineParityTest, FusedKernelsOnAndOffAreTupleIdentical) {
  // The fused-kernel dispatch (RANKCUBE_FUSED_KERNELS) is read when an
  // engine constructs its scorers, so flipping the environment between
  // sequential executions exercises both code paths; results must be
  // tuple-identical, not merely score-close.
  Fixture fx;
  auto& registry = EngineRegistry::Global();
  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE("engine: " + name);
    auto engine = registry.Create(name, fx.table, fx.io);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto workload = fx.Workload((*engine)->SupportsPredicates() ? 2 : 0);
    for (const TopKQuery& query : workload) {
      SCOPED_TRACE(query.ToString());
      ExecContext ctx;
      ctx.io = &fx.io;
      auto fused = (*engine)->Execute(query, ctx);
      ASSERT_TRUE(fused.ok()) << fused.status().ToString();
      ASSERT_EQ(setenv("RANKCUBE_FUSED_KERNELS", "0", 1), 0);
      auto generic = (*engine)->Execute(query, ctx);
      ASSERT_EQ(unsetenv("RANKCUBE_FUSED_KERNELS"), 0);
      ASSERT_TRUE(generic.ok()) << generic.status().ToString();
      EXPECT_EQ(fused.value().tuples, generic.value().tuples);
    }
  }
}

TEST(EngineParityTest, BatchExecutorReportsSameTuplesAsSingleQueries) {
  Fixture fx;
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("grid", fx.table, fx.io);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto workload = fx.Workload(2);
  ExecContext ctx;
  ctx.io = &fx.io;

  BatchExecutor batch(engine->get(), {.keep_results = true});
  auto report = batch.Run(workload, ctx);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().failed, 0u);
  ASSERT_EQ(report.value().results.size(), workload.size());

  for (size_t i = 0; i < workload.size(); ++i) {
    auto single = (*engine)->Execute(workload[i], ctx);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(report.value().results[i].tuples, single.value().tuples);
  }
}

}  // namespace
}  // namespace rankcube
