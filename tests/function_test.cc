#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "func/ranking_function.h"

namespace rankcube {
namespace {

TEST(LinearFunctionTest, EvaluateAndBounds) {
  LinearFunction f({1.0, 2.0});
  double p[] = {0.5, 0.25};
  EXPECT_DOUBLE_EQ(f.Evaluate(p), 1.0);
  Box box{{0.2, 0.4}, {0.1, 0.3}};
  EXPECT_DOUBLE_EQ(f.LowerBound(box), 0.2 + 2 * 0.1);
  EXPECT_TRUE(f.convex());
  auto dirs = f.MonotoneDirections();
  ASSERT_TRUE(dirs.has_value());
  EXPECT_EQ(*dirs, (std::vector<int>{1, 1}));
}

TEST(LinearFunctionTest, NegativeWeights) {
  LinearFunction f({1.0, -1.0});
  Box box{{0.0, 1.0}, {0.0, 1.0}};
  EXPECT_DOUBLE_EQ(f.LowerBound(box), -1.0);  // x=0, y=1
  auto mins = f.Minimizer(box);
  EXPECT_DOUBLE_EQ(mins[0], 0.0);
  EXPECT_DOUBLE_EQ(mins[1], 1.0);
  EXPECT_EQ((*f.MonotoneDirections())[1], -1);
}

TEST(LinearFunctionTest, UninvolvedDims) {
  LinearFunction f({0.0, 3.0, 0.0});
  EXPECT_EQ(f.involved_dims(), (std::vector<int>{1}));
  double p[] = {9.0, 0.5, 7.0};
  EXPECT_DOUBLE_EQ(f.Evaluate(p), 1.5);
}

TEST(QuadraticDistanceTest, EvaluateAndBounds) {
  QuadraticDistance f({1.0, 1.0}, {0.5, 0.5});
  double p[] = {0.7, 0.5};
  EXPECT_NEAR(f.Evaluate(p), 0.04, 1e-12);
  // Box containing the target: bound 0.
  EXPECT_DOUBLE_EQ(f.LowerBound(Box::Unit(2)), 0.0);
  // Box away from the target.
  Box far{{0.8, 0.9}, {0.5, 0.6}};
  EXPECT_NEAR(f.LowerBound(far), 0.09, 1e-12);
  auto center = f.SemiMonotoneCenter();
  ASSERT_TRUE(center.has_value());
  EXPECT_EQ(*center, (std::vector<double>{0.5, 0.5}));
}

TEST(L1DistanceTest, Evaluate) {
  L1Distance f({2.0, 1.0}, {0.5, 0.0});
  double p[] = {0.75, 0.5};
  EXPECT_DOUBLE_EQ(f.Evaluate(p), 2 * 0.25 + 0.5);
  EXPECT_TRUE(f.convex());
}

TEST(SquaredLinearTest, ZeroInsideBox) {
  // fg = (2X - Y - Z)^2 (§4.4.2's general query).
  SquaredLinear f({2.0, -1.0, -1.0});
  EXPECT_DOUBLE_EQ(f.LowerBound(Box::Unit(3)), 0.0);
  double p[] = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(f.Evaluate(p), 0.0);
  // Minimizer achieves the lower bound.
  auto m = f.Minimizer(Box::Unit(3));
  EXPECT_NEAR(f.Evaluate(m.data()), 0.0, 1e-12);
}

TEST(SquaredLinearTest, BoxAwayFromZero) {
  SquaredLinear f({1.0, -1.0});
  Box box{{0.8, 0.9}, {0.0, 0.1}};  // inner in [0.7, 0.9]
  EXPECT_NEAR(f.LowerBound(box), 0.49, 1e-12);
  auto m = f.Minimizer(box);
  EXPECT_NEAR(f.Evaluate(m.data()), 0.49, 1e-12);
}

TEST(GeneralABTest, EvaluateAndBounds) {
  GeneralAB f(2, 0, 1);  // (A - B^2)^2
  double p[] = {0.25, 0.5};
  EXPECT_DOUBLE_EQ(f.Evaluate(p), 0.0);
  EXPECT_DOUBLE_EQ(f.LowerBound(Box::Unit(2)), 0.0);
  Box box{{0.9, 1.0}, {0.0, 0.1}};  // a ~ 1, b^2 ~ 0
  EXPECT_NEAR(f.LowerBound(box), (0.9 - 0.01) * (0.9 - 0.01), 1e-12);
}

TEST(ConstrainedSumTest, InfOutsideBand) {
  ConstrainedSum f(2, 0, 1, 0.4, 0.6);
  double inside[] = {0.1, 0.5};
  double outside[] = {0.1, 0.9};
  EXPECT_DOUBLE_EQ(f.Evaluate(inside), 0.6);
  EXPECT_EQ(f.Evaluate(outside), kInfScore);
  Box out_box{{0.0, 1.0}, {0.7, 1.0}};
  EXPECT_EQ(f.LowerBound(out_box), kInfScore);
  Box in_box{{0.2, 0.3}, {0.3, 0.5}};
  EXPECT_DOUBLE_EQ(f.LowerBound(in_box), 0.2 + 0.4);
}

// ------------------------------------------------------------------------
// Property sweep: for every function kind, LowerBound(box) must bound
// Evaluate(p) for all p in box, and Minimizer(box) must land in the box.
// ------------------------------------------------------------------------

RankingFunctionPtr MakeFunction(const std::string& kind) {
  if (kind == "linear") return std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 2.5, 0.5});
  if (kind == "linear_neg") return std::make_shared<LinearFunction>(
      std::vector<double>{1.0, -2.0, 0.0});
  if (kind == "l2") return std::make_shared<QuadraticDistance>(
      std::vector<double>{1.0, 1.0, 2.0}, std::vector<double>{0.3, 0.7, 0.5});
  if (kind == "l1") return std::make_shared<L1Distance>(
      std::vector<double>{1.0, 1.0, 0.0}, std::vector<double>{0.9, 0.1, 0.0});
  if (kind == "sqlinear") return std::make_shared<SquaredLinear>(
      std::vector<double>{2.0, -1.0, -1.0});
  if (kind == "generalab") return std::make_shared<GeneralAB>(3, 0, 1);
  return std::make_shared<ConstrainedSum>(3, 0, 1, 0.3, 0.7);
}

class FunctionPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FunctionPropertyTest, LowerBoundHolsdOverRandomBoxes) {
  auto f = MakeFunction(GetParam());
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Box box(3);
    for (int d = 0; d < 3; ++d) {
      double a = rng.Uniform01(), b = rng.Uniform01();
      box[d] = {std::min(a, b), std::max(a, b)};
    }
    double lb = f->LowerBound(box);
    for (int i = 0; i < 20; ++i) {
      std::vector<double> p(3);
      for (int d = 0; d < 3; ++d) {
        p[d] = box[d].lo + box[d].width() * rng.Uniform01();
      }
      double v = f->Evaluate(p.data());
      if (lb == kInfScore) {
        // An infinite bound asserts no point in the box is feasible.
        EXPECT_EQ(v, kInfScore) << GetParam() << " box=" << box.ToString();
      } else {
        EXPECT_GE(v - lb, -1e-9) << GetParam() << " box=" << box.ToString();
      }
    }
  }
}

TEST_P(FunctionPropertyTest, MinimizerInsideBoxAndNearBound) {
  auto f = MakeFunction(GetParam());
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    Box box(3);
    for (int d = 0; d < 3; ++d) {
      double a = rng.Uniform01(), b = rng.Uniform01();
      box[d] = {std::min(a, b), std::max(a, b)};
    }
    auto m = f->Minimizer(box);
    ASSERT_EQ(m.size(), 3u);
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(m[d], box[d].lo - 1e-12);
      EXPECT_LE(m[d], box[d].hi + 1e-12);
    }
    // The minimizer's score upper-bounds the lower bound.
    double lb = f->LowerBound(box);
    if (lb < kInfScore) {
      EXPECT_GE(f->Evaluate(m.data()) - lb, -1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FunctionPropertyTest,
                         ::testing::Values("linear", "linear_neg", "l2", "l1",
                                           "sqlinear", "generalab",
                                           "constrained"));

}  // namespace
}  // namespace rankcube
