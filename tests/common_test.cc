#include <gtest/gtest.h>

#include "common/geometry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace rankcube {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::NotSupported("x").ToString(), "NotSupported: x");
  EXPECT_EQ(Status::Corruption("x").ToString(), "Corruption: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, ZipfIsSkewedTowardSmallValues) {
  Rng rng(3);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.99) < 10) ++head;
  }
  // Uniform would put ~10% in the first decile; zipf(0.99) much more.
  EXPECT_GT(head, n / 4);
}

TEST(RngTest, ZipfZeroCardinality) { EXPECT_EQ(Rng(4).Zipf(0, 0.5), 0u); }

TEST(GeometryTest, IntervalBasics) {
  Interval iv{0.25, 0.75};
  EXPECT_TRUE(iv.Contains(0.5));
  EXPECT_FALSE(iv.Contains(0.8));
  EXPECT_DOUBLE_EQ(iv.Clamp(0.9), 0.75);
  EXPECT_DOUBLE_EQ(iv.Clamp(0.1), 0.25);
  EXPECT_DOUBLE_EQ(iv.width(), 0.5);
  EXPECT_TRUE(iv.Intersects({0.7, 0.9}));
  EXPECT_FALSE(iv.Intersects({0.76, 0.9}));
}

TEST(GeometryTest, UnitBoxContains) {
  Box b = Box::Unit(3);
  EXPECT_TRUE(b.Contains({0.0, 0.5, 1.0}));
  EXPECT_EQ(b.dims(), 3u);
  EXPECT_DOUBLE_EQ(b.Area(), 1.0);
}

TEST(GeometryTest, ExpandToInclude) {
  Box b = Box::EmptyFor(2);
  b.ExpandToInclude({0.2, 0.6});
  b.ExpandToInclude({0.4, 0.1});
  EXPECT_DOUBLE_EQ(b[0].lo, 0.2);
  EXPECT_DOUBLE_EQ(b[0].hi, 0.4);
  EXPECT_DOUBLE_EQ(b[1].lo, 0.1);
  EXPECT_DOUBLE_EQ(b[1].hi, 0.6);
  Box other = Box::EmptyFor(2);
  other.ExpandToInclude({0.9, 0.9});
  b.ExpandToInclude(other);
  EXPECT_DOUBLE_EQ(b[0].hi, 0.9);
}

TEST(GeometryTest, EmptyBoxHasZeroArea) {
  EXPECT_DOUBLE_EQ(Box::EmptyFor(2).Area(), 0.0);
}

TEST(StopwatchTest, MovesForward) {
  Stopwatch w;
  double a = w.ElapsedMs();
  double b = w.ElapsedMs();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace rankcube
