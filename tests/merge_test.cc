#include <gtest/gtest.h>

#include <memory>

#include "gen/queries.h"
#include "gen/synthetic.h"
#include "merge/index_merge.h"
#include "reference.h"

namespace rankcube {
namespace {

struct MergeFixture {
  Table table;
  PageStore store;
  IoSession io{&store};
  std::vector<std::unique_ptr<BTree>> btrees;
  std::vector<std::unique_ptr<MergeIndex>> owned;
  std::vector<const MergeIndex*> indices;

  explicit MergeFixture(uint64_t rows, int rank_dims, int fanout = 8,
                        uint64_t seed = 9)
      : table(MakeTable(rows, rank_dims, seed)) {
    for (int d = 0; d < rank_dims; ++d) {
      btrees.push_back(
          std::make_unique<BTree>(table, d, io,
                                  BTreeOptions{.fanout = fanout}));
      owned.push_back(
          std::make_unique<BTreeMergeIndex>(btrees.back().get(), d));
      indices.push_back(owned.back().get());
    }
  }

  static Table MakeTable(uint64_t rows, int rank_dims, uint64_t seed) {
    SyntheticSpec spec;
    spec.num_rows = rows;
    spec.num_sel_dims = 1;
    spec.cardinality = 2;
    spec.num_rank_dims = rank_dims;
    spec.seed = seed;
    return GenerateSynthetic(spec);
  }

  TopKQuery Query(RankingFunctionPtr f, int k) const {
    TopKQuery q;
    q.function = std::move(f);
    q.k = k;
    return q;
  }
};

std::vector<RankingFunctionPtr> TestFunctions2d() {
  return {
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 2.0}),
      std::make_shared<QuadraticDistance>(std::vector<double>{1.0, 1.0},
                                          std::vector<double>{0.4, 0.7}),
      std::make_shared<GeneralAB>(2, 0, 1),
      std::make_shared<ConstrainedSum>(2, 0, 1, 0.2, 0.6),
      std::make_shared<SquaredLinear>(std::vector<double>{1.0, -1.0}),
  };
}

TEST(IndexMergeTest, BaselineMatchesBruteForce) {
  MergeFixture fx(3000, 2);
  for (const auto& f : TestFunctions2d()) {
    TopKQuery q = fx.Query(f, 10);
    MergeOptions opt;
    opt.mode = MergeOptions::Mode::kBaseline;
    ExecStats stats;
    auto res = IndexMergeTopK(fx.table, fx.indices, q.function, q.k, opt,
                              &fx.io, &stats);
    EXPECT_EQ(ScoresOf(res), ScoresOf(BruteForceTopK(fx.table, q)))
        << f->ToString();
  }
}

TEST(IndexMergeTest, ProgressiveMatchesBruteForce) {
  MergeFixture fx(5000, 2);
  for (const auto& f : TestFunctions2d()) {
    TopKQuery q = fx.Query(f, 20);
    MergeOptions opt;
    ExecStats stats;
    auto res = IndexMergeTopK(fx.table, fx.indices, q.function, q.k, opt,
                              &fx.io, &stats);
    EXPECT_EQ(ScoresOf(res), ScoresOf(BruteForceTopK(fx.table, q)))
        << f->ToString();
  }
}

TEST(IndexMergeTest, ProgressiveWithSignatureMatchesBruteForce) {
  MergeFixture fx(5000, 2);
  JoinSignature sig({fx.indices[0], fx.indices[1]});
  for (const auto& f : TestFunctions2d()) {
    TopKQuery q = fx.Query(f, 20);
    MergeOptions opt;
    opt.signatures = {&sig};
    opt.signature_positions = {{0, 1}};
    ExecStats stats;
    auto res = IndexMergeTopK(fx.table, fx.indices, q.function, q.k, opt,
                              &fx.io, &stats);
    EXPECT_EQ(ScoresOf(res), ScoresOf(BruteForceTopK(fx.table, q)))
        << f->ToString();
  }
}

TEST(IndexMergeTest, ProgressiveGeneratesFewerStatesThanBaseline) {
  MergeFixture fx(4000, 2);
  auto f = std::make_shared<GeneralAB>(2, 0, 1);
  MergeOptions bl;
  bl.mode = MergeOptions::Mode::kBaseline;
  ExecStats sbl;
  IndexMergeTopK(fx.table, fx.indices, f, 50, bl, &fx.io, &sbl);
  MergeOptions pe;
  ExecStats spe;
  IndexMergeTopK(fx.table, fx.indices, f, 50, pe, &fx.io, &spe);
  EXPECT_LT(spe.states_generated, sbl.states_generated);  // Table 5.1's gap
  EXPECT_LT(spe.peak_heap, sbl.peak_heap);
}

TEST(IndexMergeTest, SignatureReducesIndexAccessesOnGeneralQuery) {
  MergeFixture fx(20000, 2, /*fanout=*/16);
  JoinSignature sig({fx.indices[0], fx.indices[1]});
  auto f = std::make_shared<GeneralAB>(2, 0, 1);
  MergeOptions pe;
  ExecStats spe;
  fx.io.ResetStats();
  IndexMergeTopK(fx.table, fx.indices, f, 100, pe, &fx.io, &spe);
  uint64_t pe_nodes = fx.io.stats(IoCategory::kBTree).physical;
  MergeOptions sigopt;
  sigopt.signatures = {&sig};
  sigopt.signature_positions = {{0, 1}};
  ExecStats ssig;
  fx.io.ResetStats();
  auto res_sig = IndexMergeTopK(fx.table, fx.indices, f, 100, sigopt,
                                &fx.io, &ssig);
  uint64_t sig_nodes = fx.io.stats(IoCategory::kBTree).physical;
  EXPECT_LT(sig_nodes, pe_nodes);
  EXPECT_LT(ssig.states_generated, spe.states_generated);
}

TEST(IndexMergeTest, ThreeWayMergeAllConfigurations) {
  MergeFixture fx(3000, 3);
  auto f = std::make_shared<QuadraticDistance>(
      std::vector<double>{1.0, 1.0, 1.0}, std::vector<double>{0.2, 0.5, 0.9});
  TopKQuery q = fx.Query(f, 15);
  auto oracle = ScoresOf(BruteForceTopK(fx.table, q));

  MergeOptions pe;
  ExecStats s1;
  EXPECT_EQ(ScoresOf(IndexMergeTopK(fx.table, fx.indices, f, 15, pe,
                                    &fx.io, &s1)),
            oracle);

  // One 3-d signature.
  JoinSignature sig3({fx.indices[0], fx.indices[1], fx.indices[2]});
  MergeOptions o3;
  o3.signatures = {&sig3};
  o3.signature_positions = {{0, 1, 2}};
  ExecStats s2;
  EXPECT_EQ(ScoresOf(IndexMergeTopK(fx.table, fx.indices, f, 15, o3,
                                    &fx.io, &s2)),
            oracle);

  // Three pairwise 2-d signatures (§5.3.3).
  JoinSignature s01({fx.indices[0], fx.indices[1]});
  JoinSignature s02({fx.indices[0], fx.indices[2]});
  JoinSignature s12({fx.indices[1], fx.indices[2]});
  MergeOptions o2;
  o2.signatures = {&s01, &s02, &s12};
  o2.signature_positions = {{0, 1}, {0, 2}, {1, 2}};
  ExecStats s3;
  EXPECT_EQ(ScoresOf(IndexMergeTopK(fx.table, fx.indices, f, 15, o2,
                                    &fx.io, &s3)),
            oracle);
}

TEST(IndexMergeTest, RTreeIndicesMerge) {
  // 4 ranking dims split across two 2-d R-trees (Fig 5.13/5.14 setup).
  SyntheticSpec spec;
  spec.num_rows = 4000;
  spec.num_sel_dims = 1;
  spec.cardinality = 2;
  spec.num_rank_dims = 4;
  spec.seed = 13;
  Table table = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  RTree r1(2, io, {.max_entries = 16});
  RTree r2(2, io, {.max_entries = 16});
  std::vector<int> d01{0, 1}, d23{2, 3};
  r1.BulkLoadSTR(table, &d01);
  r2.BulkLoadSTR(table, &d23);
  RTreeMergeIndex m1(&r1, d01), m2(&r2, d23);
  std::vector<const MergeIndex*> indices{&m1, &m2};

  auto f = std::make_shared<QuadraticDistance>(
      std::vector<double>{1, 1, 1, 1}, std::vector<double>{0.3, 0.6, 0.2, 0.8});
  TopKQuery q;
  q.function = f;
  q.k = 25;
  auto oracle = ScoresOf(BruteForceTopK(table, q));

  MergeOptions pe;
  ExecStats s1;
  EXPECT_EQ(ScoresOf(IndexMergeTopK(table, indices, f, 25, pe, &io, &s1)),
            oracle);

  JoinSignature sig({&m1, &m2});
  MergeOptions o;
  o.signatures = {&sig};
  o.signature_positions = {{0, 1}};
  ExecStats s2;
  EXPECT_EQ(ScoresOf(IndexMergeTopK(table, indices, f, 25, o, &io, &s2)),
            oracle);
}

TEST(IndexMergeTest, PartialAttributesInRanking) {
  // Fig 5.18: f uses only one of the two indexed attribute groups.
  MergeFixture fx(3000, 2);
  auto f = std::make_shared<LinearFunction>(std::vector<double>{1.0, 0.0});
  TopKQuery q = fx.Query(f, 10);
  MergeOptions pe;
  ExecStats stats;
  auto res =
      IndexMergeTopK(fx.table, fx.indices, f, 10, pe, &fx.io, &stats);
  EXPECT_EQ(ScoresOf(res), ScoresOf(BruteForceTopK(fx.table, q)));
}

TEST(IndexMergeTest, KLargerThanData) {
  MergeFixture fx(50, 2);
  auto f = std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0});
  MergeOptions pe;
  ExecStats stats;
  auto res =
      IndexMergeTopK(fx.table, fx.indices, f, 500, pe, &fx.io, &stats);
  EXPECT_EQ(res.size(), 50u);
}

TEST(ExpansionTest, NeighborhoodApplicability) {
  MergeFixture fx(100, 2);
  LinearFunction lin({1.0, 1.0});
  QuadraticDistance dist({1.0, 1.0}, {0.5, 0.5});
  GeneralAB gen(2, 0, 1);
  EXPECT_TRUE(NeighborhoodApplicable(fx.indices, lin));
  EXPECT_TRUE(NeighborhoodApplicable(fx.indices, dist));
  EXPECT_FALSE(NeighborhoodApplicable(fx.indices, gen));
}

TEST(JoinSignatureTest, NoFalseNegativesOnRealTuples) {
  MergeFixture fx(2000, 2, /*fanout=*/4);  // deep trees
  JoinSignature sig({fx.indices[0], fx.indices[1]});
  auto p0 = fx.indices[0]->TupleNodePaths();
  auto p1 = fx.indices[1]->TupleNodePaths();
  for (Tid t = 0; t < 200; ++t) {
    size_t depth = std::max(p0[t].size(), p1[t].size());
    std::vector<std::vector<int>> prefix(2);
    for (size_t level = 0; level < depth; ++level) {
      StateKey key = MakeStateKey(prefix);
      ASSERT_TRUE(sig.StateExists(key)) << "tid " << t << " level " << level;
      std::vector<int> coords(2);
      coords[0] = level < p0[t].size() ? p0[t][level] : 0;
      coords[1] = level < p1[t].size() ? p1[t][level] : 0;
      EXPECT_TRUE(sig.ChildMayBeNonEmpty(key, coords));
      if (level < p0[t].size()) prefix[0].push_back(p0[t][level]);
      if (level < p1[t].size()) prefix[1].push_back(p1[t][level]);
    }
  }
}

TEST(JoinSignatureTest, DetectsEmptyStates) {
  // Construct a table where dim0 and dim1 are perfectly anti-aligned so
  // many joint states are empty.
  TableSchema schema;
  schema.sel_cardinality = {2};
  schema.num_rank_dims = 2;
  Table t(schema);
  for (int i = 0; i < 256; ++i) {
    double x = i / 256.0;
    ASSERT_TRUE(t.AddRow({0}, {x, 1.0 - x}).ok());
  }
  PageStore store;
  IoSession io{&store};
  BTree b0(t, 0, io, {.fanout = 4});
  BTree b1(t, 1, io, {.fanout = 4});
  BTreeMergeIndex m0(&b0, 0), m1(&b1, 1);
  JoinSignature sig({&m0, &m1});
  // Root state: children pair (first of A, first of B) = (low x, low 1-x)
  // = (low x, high x) cannot both hold the same tuple... At the root level
  // the child (1,1) pairs A's smallest quartile with B's smallest quartile,
  // i.e. x < 0.25 and 1-x < 0.25 -> empty.
  StateKey root = MakeStateKey({{}, {}});
  ASSERT_TRUE(sig.StateExists(root));
  EXPECT_FALSE(sig.ChildMayBeNonEmpty(root, {1, 1}));
  // (1, last) pairs small x with large 1-x: non-empty.
  int last = static_cast<int>(b1.node(b1.root()).children.size());
  EXPECT_TRUE(sig.ChildMayBeNonEmpty(root, {1, last}));
}

TEST(JoinSignatureTest, SizeAndCountsReported) {
  MergeFixture fx(3000, 2);
  JoinSignature sig({fx.indices[0], fx.indices[1]});
  EXPECT_GT(sig.num_states(), 0u);
  EXPECT_GT(sig.SizeBytes(), 0u);
}

}  // namespace
}  // namespace rankcube
