// Result-cache acceptance suite. The contract under test:
//  (a) a cache hit is byte-identical to the uncached execution — for every
//      engine the planner can route, before and after inserts, deletes and
//      compaction (epoch-tag exactness: a write invalidates, a compaction
//      does not);
//  (b) certified near-duplicate reuse re-ranks a cached candidate set only
//      when the MaxAbsDiff bound proves the answer exact, and falls back to
//      full execution — still exact — whenever it cannot;
//  (c) canonical keys equate exactly the queries whose uncached executions
//      are bit-identical (predicate order, first-child Add flattening) and
//      nothing more;
//  (d) the partitioned scatter cache invalidates per partition: a write to
//      a partition the key's predicates exclude keeps the entry live;
//  (e) the cache is safe under concurrent readers, writers and resizes
//      (this test runs in the TSan CI job);
//  (f) true-cost planner feedback drives the per-family EWMA correction to
//      the measured bias, clamps outliers, and is inert when disabled;
//  (g) the CACHE wire verb round-trips, and a cache-disabled server
//      reports kNotSupported rather than a transport error.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/feedback.h"
#include "cache/query_key.h"
#include "cache/result_cache.h"
#include "common/rng.h"
#include "engine/query_builder.h"
#include "func/score_expr.h"
#include "gen/synthetic.h"
#include "partition/partitioned_db.h"
#include "planner/rank_cube_db.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tests/reference.h"

namespace rankcube {
namespace {

const std::vector<std::string>& AllEngines() {
  static const std::vector<std::string> kEngines = {
      "grid",          "fragments",     "signature",
      "signature_lossy", "table_scan",  "boolean_first",
      "ranking_first", "rank_mapping",  "index_merge"};
  return kEngines;
}

TableSchema TestSchema() {
  TableSchema schema;
  schema.sel_cardinality = {5, 4, 3};
  schema.num_rank_dims = 2;
  return schema;
}

Table MakeTable(size_t rows, uint64_t seed = 7) {
  Table t(TestSchema());
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<int32_t> sel = {static_cast<int32_t>(rng.UniformInt(5)),
                                static_cast<int32_t>(rng.UniformInt(4)),
                                static_cast<int32_t>(rng.UniformInt(3))};
    std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
    EXPECT_TRUE(t.AddRow(sel, rank).ok());
  }
  return t;
}

ScoreExprPtr Linear2(double w0, double w1) {
  return ScoreExpr::Add(
      {ScoreExpr::Mul({ScoreExpr::Const(w0), ScoreExpr::Var(0)}),
       ScoreExpr::Mul({ScoreExpr::Const(w1), ScoreExpr::Var(1)})});
}

/// The mutable db under test (cache on) and its cache-disabled twin fed the
/// identical writes; both route through the same planner, so "hit equals
/// uncached execution" is literal tuple equality.
struct DbPair {
  RankCubeDb cached;
  RankCubeDb oracle;

  explicit DbPair(size_t rows, std::vector<std::string> engines = {})
      : cached(MakeTable(rows), CachedOptions(engines)),
        oracle(MakeTable(rows), OracleOptions(std::move(engines))) {}

  static RankCubeDb::Options CachedOptions(std::vector<std::string> engines) {
    RankCubeDb::Options o;
    o.engines = std::move(engines);
    o.cache.max_bytes = 8u << 20;
    return o;
  }
  static RankCubeDb::Options OracleOptions(std::vector<std::string> engines) {
    RankCubeDb::Options o;
    o.engines = std::move(engines);
    return o;
  }

  void InsertBoth(const std::vector<int32_t>& sel,
                  const std::vector<double>& rank) {
    auto a = cached.Insert(sel, rank);
    auto b = oracle.Insert(sel, rank);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a.value(), b.value());  // identical writes => identical tids
  }

  void DeleteBoth(Tid tid) {
    ASSERT_TRUE(cached.Delete(tid).ok());
    ASSERT_TRUE(oracle.Delete(tid).ok());
  }

  /// Runs `query` on both sides and requires tuple-identical answers.
  std::vector<ScoredTuple> ExpectParity(const TopKQuery& query) {
    auto got = cached.Query(query);
    auto want = oracle.Query(query);
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(want.ok()) << want.status().ToString();
    if (!got.ok() || !want.ok()) return {};
    EXPECT_EQ(got.value().tuples, want.value().tuples);
    return got.value().tuples;
  }
};

// ---------------------------------------------------------------------------
// Canonical keys: equate exactly the bit-identical executions.

TEST(CanonicalQueryTest, PredicateOrderDoesNotChangeTheKey) {
  TopKQuery a = QueryBuilder()
                    .Where(0, 2)
                    .Where(2, 1)
                    .OrderByLinear({1.0, 2.0})
                    .Limit(10)
                    .Build();
  TopKQuery b = QueryBuilder()
                    .Where(2, 1)
                    .Where(0, 2)
                    .OrderByLinear({1.0, 2.0})
                    .Limit(10)
                    .Build();
  CanonicalQuery ka = CanonicalizeQuery(a);
  CanonicalQuery kb = CanonicalizeQuery(b);
  ASSERT_TRUE(ka.cacheable);
  ASSERT_TRUE(kb.cacheable);
  EXPECT_EQ(ka.full_key, kb.full_key);
  EXPECT_EQ(ka.sibling_key, kb.sibling_key);
}

TEST(CanonicalQueryTest, KSplitsFamiliesAndWeightsSplitOnlyTheFullKey) {
  TopKQuery base =
      QueryBuilder().Where(1, 1).OrderByLinear({1.0, 2.0}).Limit(10).Build();
  TopKQuery other_k =
      QueryBuilder().Where(1, 1).OrderByLinear({1.0, 2.0}).Limit(20).Build();
  TopKQuery other_w =
      QueryBuilder().Where(1, 1).OrderByLinear({3.0, 0.5}).Limit(10).Build();
  CanonicalQuery kb = CanonicalizeQuery(base);
  CanonicalQuery kk = CanonicalizeQuery(other_k);
  CanonicalQuery kw = CanonicalizeQuery(other_w);
  // A different k is a different family — its prefix answers a different
  // question.
  EXPECT_NE(kb.sibling_key, kk.sibling_key);
  // A different function shares the family (the reuse candidate set) but
  // never the exact-hit key.
  EXPECT_EQ(kb.sibling_key, kw.sibling_key);
  EXPECT_NE(kb.full_key, kw.full_key);
}

TEST(CanonicalQueryTest, OnlyFirstChildAddFlatteningIsCoalesced) {
  ScoreExprPtr a = ScoreExpr::Mul({ScoreExpr::Const(2.0), ScoreExpr::Var(0)});
  ScoreExprPtr b = ScoreExpr::Mul({ScoreExpr::Const(3.0), ScoreExpr::Var(1)});
  ScoreExprPtr c = ScoreExpr::Const(0.25);
  // Eval folds Add left to right from 0.0, so Add[Add[a,b],c] computes the
  // very doubles Add[a,b,c] does — one key.
  std::string nested_first =
      CanonicalExprKey(*ScoreExpr::Add({ScoreExpr::Add({a, b}), c}));
  std::string flat = CanonicalExprKey(*ScoreExpr::Add({a, b, c}));
  EXPECT_EQ(nested_first, flat);
  // Add[c,Add[a,b]] folds in a different order; equating it would trade a
  // wrong answer for a cache hit.
  std::string nested_second =
      CanonicalExprKey(*ScoreExpr::Add({c, ScoreExpr::Add({a, b})}));
  EXPECT_NE(nested_second, flat);
}

/// A ranking function with no expression tree: structural identity cannot
/// be proven, so the cache must pass such queries through untouched.
class OpaqueFunction : public RankingFunction {
 public:
  OpaqueFunction() : dims_{0, 1} {}
  int num_dims() const override { return 2; }
  const std::vector<int>& involved_dims() const override { return dims_; }
  double Evaluate(const double* p) const override { return p[0] + p[1]; }
  double LowerBound(const Box& box) const override {
    return box[0].lo + box[1].lo;
  }
  std::string ToString() const override { return "opaque"; }

 private:
  std::vector<int> dims_;
};

TEST(CanonicalQueryTest, FunctionWithoutExprTreeIsNotCacheable) {
  TopKQuery q = QueryBuilder()
                    .OrderBy(std::make_shared<OpaqueFunction>())
                    .Limit(5)
                    .Build();
  EXPECT_FALSE(CanonicalizeQuery(q).cacheable);

  // End to end: the query answers correctly and never populates the cache.
  DbPair pair(400);
  pair.ExpectParity(q);
  pair.ExpectParity(q);
  ResultCacheStats stats = pair.cached.CacheStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

// ---------------------------------------------------------------------------
// MaxAbsDiff: the certification bound behind near-duplicate reuse.

TEST(MaxAbsDiffTest, LinearPairBoundIsTheWeightDeltaSum) {
  ScoreExprPtr f = Linear2(1.0, 2.0);
  ScoreExprPtr g = Linear2(1.003, 1.998);
  Box unit = Box::Unit(2);
  double bound = MaxAbsDiff(*f, *g, unit);
  // Structure-parallel descent sees the shared Var nodes, so the bound is
  // sum_d |dw_d| — attained at the corner (1,1) — not the naive
  // Range(f) - Range(g) blowup.
  EXPECT_NEAR(bound, 0.003 + 0.002, 1e-12);
  // Soundness at the attaining corner.
  double corner[2] = {1.0, 1.0};
  ExprFunction ff(2, f), gg(2, g);
  EXPECT_LE(std::abs(ff.Evaluate(corner) - gg.Evaluate(corner)),
            bound + 1e-12);
}

TEST(MaxAbsDiffTest, IdenticalAndSharedTreesBoundToZero) {
  ScoreExprPtr f = Linear2(1.5, 0.5);
  Box unit = Box::Unit(2);
  EXPECT_EQ(MaxAbsDiff(*f, *f, unit), 0.0);
  // Structurally equal but distinct allocations.
  EXPECT_EQ(MaxAbsDiff(*Linear2(1.5, 0.5), *Linear2(1.5, 0.5), unit), 0.0);
}

TEST(MaxAbsDiffTest, GateBandMismatchIsUnprovable) {
  ScoreExprPtr body = Linear2(1.0, 1.0);
  ScoreExprPtr f = ScoreExpr::Gate(body, 0, 0.0, 0.6);
  ScoreExprPtr g = ScoreExpr::Gate(body, 0, 0.1, 0.7);
  // The gates disagree on [0.0, 0.1): f is finite there, g is +inf — no
  // finite bound exists and the reuse path must fall back.
  EXPECT_EQ(MaxAbsDiff(*f, *g, Box::Unit(2)), kInfScore);
  // Identical bands are fine.
  ScoreExprPtr h = ScoreExpr::Gate(Linear2(1.001, 1.0), 0, 0.0, 0.6);
  EXPECT_LT(MaxAbsDiff(*f, *h, Box::Unit(2)), 0.0011);
}

TEST(MaxAbsDiffTest, NeverUnderestimatesOnSampledPoints) {
  // Shape-mismatched pair: falls back to the interval RangeDiff bound,
  // which must still dominate every sampled |f - g|.
  ScoreExprPtr f = Linear2(1.0, 2.0);
  ScoreExprPtr g = ScoreExpr::Add(
      {ScoreExpr::Square(ScoreExpr::Var(0)),
       ScoreExpr::Mul({ScoreExpr::Const(2.0), ScoreExpr::Var(1)})});
  Box unit = Box::Unit(2);
  double bound = MaxAbsDiff(*f, *g, unit);
  ASSERT_LT(bound, kInfScore);
  ExprFunction ff(2, f), gg(2, g);
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    double p[2] = {rng.Uniform01(), rng.Uniform01()};
    EXPECT_LE(std::abs(ff.Evaluate(p) - gg.Evaluate(p)), bound + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// ResultCache in isolation.

TEST(ResultCacheUnitTest, EpochTagsEvictionAndFamilyHistory) {
  ResultCacheOptions opts;
  opts.max_bytes = 4u << 20;
  opts.shards = 4;
  ResultCache cache(opts);
  TopKQuery q =
      QueryBuilder().Where(0, 1).OrderByLinear({1.0, 2.0}).Limit(3).Build();
  CanonicalQuery key = CanonicalizeQuery(q);
  ASSERT_TRUE(key.cacheable);
  EXPECT_FALSE(cache.FamilySeen(key));

  CachedResult value;
  value.tuples = {{1, 0.1}, {2, 0.2}, {3, 0.3}};
  value.exclusion_bound = 0.4;
  value.expr = q.function->Expr();
  cache.Insert(key, "e1", value);
  EXPECT_TRUE(cache.FamilySeen(key));

  // Exact hit at the matching tag, with the full stored prefix.
  auto hit = cache.Lookup(key, "e1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->tuples.size(), 3u);
  EXPECT_EQ(cache.Stats().hits, 1u);

  // A different tag lazily erases the entry — exactly once.
  EXPECT_FALSE(cache.Lookup(key, "e2").has_value());
  EXPECT_EQ(cache.Stats().invalidations, 1u);
  EXPECT_EQ(cache.Stats().entries, 0u);
  // The family history survives the invalidation (it drives overfetch).
  EXPECT_TRUE(cache.FamilySeen(key));

  // Siblings: same selection + k, different function.
  cache.Insert(key, "e2", value);
  TopKQuery q2 =
      QueryBuilder().Where(0, 1).OrderByLinear({1.1, 2.0}).Limit(3).Build();
  CanonicalQuery key2 = CanonicalizeQuery(q2);
  ASSERT_EQ(key.sibling_key, key2.sibling_key);
  EXPECT_EQ(cache.FindSiblings(key2, "e2").size(), 1u);
  EXPECT_TRUE(cache.FindSiblings(key2, "e3").empty());  // stale => erased
  EXPECT_EQ(cache.Stats().entries, 0u);

  // Shrinking the budget evicts; zero disables outright.
  cache.Insert(key, "e3", value);
  cache.Resize(64);  // smaller than any entry
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_GT(cache.Stats().evictions, 0u);
  cache.Resize(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(key, "e3", value);
  EXPECT_FALSE(cache.Lookup(key, "e3").has_value());
}

// ---------------------------------------------------------------------------
// End-to-end exactness: hit == uncached execution, across every engine and
// every mutation class.

TEST(CacheDbTest, HitsSurviveWritesAndCompactionAcrossAllEngines) {
  for (const std::string& engine : AllEngines()) {
    SCOPED_TRACE("engine: " + engine);
    if (engine == "rank_mapping") {
      // rank_mapping is force-only (it needs an oracle k-th-score bound),
      // and a forced engine deliberately bypasses the cache: the user asked
      // for a specific execution, not a remembered one. Pin down exactly
      // that: forced queries answer, repeat identically, and never touch
      // the cache.
      DbPair pair(1200);
      TopKQuery q = QueryBuilder().OrderByLinear({1.0, 2.0}).Limit(10).Build();
      QueryOptions force;
      force.force_engine = engine;
      auto a = pair.cached.Query(q, force);
      auto b = pair.cached.Query(q, force);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(a.value().tuples, b.value().tuples);
      ResultCacheStats stats = pair.cached.CacheStats();
      EXPECT_EQ(stats.hits + stats.misses + stats.entries, 0u);
      continue;
    }
    DbPair pair(1200, {engine});
    // index_merge answers only predicate-free queries; every other engine
    // gets a selective one too.
    std::vector<TopKQuery> workload;
    workload.push_back(
        QueryBuilder().OrderByLinear({1.0, 2.0}).Limit(10).Build());
    if (engine != "index_merge") {
      workload.push_back(QueryBuilder()
                             .Where(0, 2)
                             .OrderByLinear({2.0, 1.0})
                             .Limit(10)
                             .Build());
    }
    Tid next_delete = 5;
    for (const TopKQuery& q : workload) {
      SCOPED_TRACE(q.ToString());
      // Cold: miss. Warm: exact full-key hit, tuple-identical.
      ResultCacheStats before = pair.cached.CacheStats();
      std::vector<ScoredTuple> cold = pair.ExpectParity(q);
      std::vector<ScoredTuple> warm = pair.ExpectParity(q);
      EXPECT_EQ(cold, warm);
      ResultCacheStats after = pair.cached.CacheStats();
      EXPECT_EQ(after.misses, before.misses + 1);
      EXPECT_EQ(after.hits, before.hits + 1);

      // An insert invalidates and the re-executed answer is exact.
      pair.InsertBoth({2, 1, 0}, {0.001, 0.002});
      pair.ExpectParity(q);
      EXPECT_GE(pair.cached.CacheStats().invalidations,
                after.invalidations + 1);

      // A delete invalidates too.
      pair.DeleteBoth(next_delete++);
      pair.ExpectParity(q);

      // Warm the entry back, then compact: the epoch is preserved, so the
      // entry must still hit — compaction never invalidates.
      pair.ExpectParity(q);
      ResultCacheStats warm2 = pair.cached.CacheStats();
      ASSERT_TRUE(pair.cached.Compact().ok());
      ASSERT_TRUE(pair.oracle.Compact().ok());
      pair.ExpectParity(q);
      ResultCacheStats post = pair.cached.CacheStats();
      EXPECT_EQ(post.hits, warm2.hits + 1);
      EXPECT_EQ(post.misses, warm2.misses);
    }
  }
}

TEST(CacheDbTest, HitsMatchBruteForceOracle) {
  Table table = MakeTable(800, 21);
  RankCubeDb db(MakeTable(800, 21), DbPair::CachedOptions({}));
  std::vector<TopKQuery> workload = {
      QueryBuilder().OrderByLinear({1.0, 2.0}).Limit(7).Build(),
      QueryBuilder().Where(1, 2).OrderByLinear({0.5, 3.0}).Limit(12).Build(),
      QueryBuilder()
          .Where(0, 3)
          .Where(2, 1)
          .OrderByDistance({1.0, 1.0}, {0.4, 0.6})
          .Limit(5)
          .Build(),
  };
  for (const TopKQuery& q : workload) {
    SCOPED_TRACE(q.ToString());
    std::vector<ScoredTuple> want = BruteForceTopK(table, q);
    for (int pass = 0; pass < 2; ++pass) {  // cold then cached
      auto got = db.Query(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(ScoresOf(got.value().tuples), ScoresOf(want));
    }
  }
  EXPECT_GE(db.CacheStats().hits, workload.size());
}

// ---------------------------------------------------------------------------
// Certified near-duplicate reuse.

TEST(CacheDbTest, CertifiedReuseOfNearDuplicateWeightsIsExact) {
  DbPair pair(2000);
  auto weights_query = [](double w0, double w1) {
    return QueryBuilder()
        .Where(0, 2)
        .OrderByLinear({w0, w1})
        .Limit(10)
        .Build();
  };
  // Establish the family (first sighting executes at plain k), then force
  // an overfetched entry with the first near-duplicate miss.
  pair.ExpectParity(weights_query(1.0, 2.0));
  pair.ExpectParity(weights_query(1.0002, 2.0));
  // This near-duplicate should re-rank the cached candidate set — no full
  // execution — and still match the cache-disabled twin exactly.
  ResultCacheStats before = pair.cached.CacheStats();
  pair.ExpectParity(weights_query(1.0, 2.0003));
  ResultCacheStats after = pair.cached.CacheStats();
  EXPECT_EQ(after.reuse_hits, before.reuse_hits + 1)
      << "near-duplicate did not certify";
  EXPECT_EQ(after.misses, before.misses);

  // The reuse result was re-cached: repeating it is now an exact hit.
  pair.ExpectParity(weights_query(1.0, 2.0003));
  EXPECT_EQ(pair.cached.CacheStats().hits, after.hits + 1);
}

TEST(CacheDbTest, DistantFunctionFallsBackToFullExecution) {
  DbPair pair(2000);
  auto weights_query = [](double w0, double w1) {
    return QueryBuilder()
        .Where(0, 2)
        .OrderByLinear({w0, w1})
        .Limit(10)
        .Build();
  };
  pair.ExpectParity(weights_query(1.0, 2.0));
  pair.ExpectParity(weights_query(1.0001, 2.0));  // overfetched entry exists
  // delta = |dw0| + |dw1| = 2.5 dwarfs any bound gap: certification must
  // refuse, and the fallback answer is exact.
  ResultCacheStats before = pair.cached.CacheStats();
  pair.ExpectParity(weights_query(3.0, 0.5));
  ResultCacheStats after = pair.cached.CacheStats();
  EXPECT_EQ(after.reuse_hits, before.reuse_hits);
  EXPECT_EQ(after.misses, before.misses + 1);
}

TEST(CacheDbTest, GateBandMismatchFallsBackToFullExecution) {
  DbPair pair(2000);
  auto gated_query = [](double lo, double hi, double w0) {
    return QueryBuilder()
        .OrderByExpr(2, ScoreExpr::Gate(Linear2(w0, 1.0), 0, lo, hi))
        .Limit(8)
        .Build();
  };
  pair.ExpectParity(gated_query(0.0, 0.6, 1.0));
  pair.ExpectParity(gated_query(0.0, 0.6, 1.0001));  // deep entry in family
  // Same family (same predicates, same k) but the band moved: MaxAbsDiff
  // is +inf, so reuse must not fire — and the answer stays exact.
  ResultCacheStats before = pair.cached.CacheStats();
  pair.ExpectParity(gated_query(0.1, 0.7, 1.0));
  ResultCacheStats after = pair.cached.CacheStats();
  EXPECT_EQ(after.reuse_hits, before.reuse_hits);
  EXPECT_EQ(after.misses, before.misses + 1);
  // A band-identical near-duplicate in the same family still certifies.
  pair.ExpectParity(gated_query(0.0, 0.6, 1.0002));
  EXPECT_GE(pair.cached.CacheStats().reuse_hits, before.reuse_hits + 1);
}

// ---------------------------------------------------------------------------
// Cache control: disabled by default, runtime resize/clear, byte budget.

TEST(CacheDbTest, DisabledByDefaultAndResizeEnablesAtRuntime) {
  RankCubeDb db(MakeTable(600));  // default options: cache off
  EXPECT_FALSE(db.cache_enabled());
  TopKQuery q = QueryBuilder().OrderByLinear({1.0, 2.0}).Limit(5).Build();
  ASSERT_TRUE(db.Query(q).ok());
  ASSERT_TRUE(db.Query(q).ok());
  ResultCacheStats stats = db.CacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.max_bytes, 0u);

  db.ResizeCache(1u << 20);
  EXPECT_TRUE(db.cache_enabled());
  auto first = db.Query(q);
  auto second = db.Query(q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().tuples, second.value().tuples);
  EXPECT_EQ(db.CacheStats().hits, 1u);

  db.ClearCache();
  EXPECT_EQ(db.CacheStats().entries, 0u);
  ASSERT_TRUE(db.Query(q).ok());  // re-executes, no crash
  EXPECT_EQ(db.CacheStats().hits, 1u);
}

TEST(CacheDbTest, TinyBudgetEvictsButNeverChangesAnswers) {
  DbPair pair(800);
  pair.cached.ResizeCache(16 * 1500);  // ~1.5 KB per shard: a few entries
  Rng rng(31);
  for (int i = 0; i < 120; ++i) {
    TopKQuery q = QueryBuilder()
                      .Where(0, static_cast<int32_t>(rng.UniformInt(5)))
                      .OrderByLinear({1.0 + 0.01 * i, 2.0})
                      .Limit(10)
                      .Build();
    pair.ExpectParity(q);
  }
  ResultCacheStats stats = pair.cached.CacheStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, stats.max_bytes);
}

// ---------------------------------------------------------------------------
// Partitioned scatter cache: invalidation is per partition.

TEST(PartitionedCacheTest, WritesToExcludedPartitionsKeepEntriesLive) {
  TableSchema schema;
  schema.sel_cardinality = {16, 4, 3};
  schema.num_rank_dims = 2;
  PartitionedDb::Options popts;
  popts.schema = schema;
  popts.partition_dim = 0;
  popts.cache.max_bytes = 4u << 20;
  auto pdb = PartitionedDb::Open(std::move(popts)).value();

  Rng rng(47);
  auto random_row = [&](int32_t dim0) {
    std::vector<int32_t> sel = {dim0, static_cast<int32_t>(rng.UniformInt(4)),
                                static_cast<int32_t>(rng.UniformInt(3))};
    std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
    return std::make_pair(sel, rank);
  };
  for (const auto& [name, lo, hi] :
       {std::tuple<std::string, int32_t, int32_t>{"a", 0, 8},
        std::tuple<std::string, int32_t, int32_t>{"b", 8, 16}}) {
    Table seed(schema);
    for (int i = 0; i < 300; ++i) {
      auto [sel, rank] = random_row(lo + static_cast<int32_t>(
                                             rng.UniformInt(hi - lo)));
      ASSERT_TRUE(seed.AddRow(sel, rank).ok());
    }
    ASSERT_TRUE(pdb->CreatePartition(name, {lo, hi}, std::move(seed)).ok());
  }

  // Pin the query to partition "a" and warm the cache.
  TopKQuery q =
      QueryBuilder().Where(0, 2).OrderByLinear({1.0, 2.0}).Limit(10).Build();
  auto cold = pdb->Query(q);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = pdb->Query(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cold.value().tuples, warm.value().tuples);
  ResultCacheStats after_warm = pdb->CacheStats();
  EXPECT_EQ(after_warm.hits, 1u);

  // A write routed to partition "b" cannot change the answer, and the
  // folded epoch tag knows it: still a hit, no invalidation.
  auto [sel_b, rank_b] = random_row(12);
  ASSERT_TRUE(pdb->Insert(sel_b, rank_b).ok());
  auto still = pdb->Query(q);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still.value().tuples, warm.value().tuples);
  ResultCacheStats after_b = pdb->CacheStats();
  EXPECT_EQ(after_b.hits, 2u);
  EXPECT_EQ(after_b.invalidations, 0u);

  // A write routed to partition "a" invalidates, and the re-executed
  // answer reflects it: insert a row that must win the top-k.
  ASSERT_TRUE(pdb->Insert({2, 0, 0}, {0.0, 0.0}).ok());
  auto fresh = pdb->Query(q);
  ASSERT_TRUE(fresh.ok());
  ResultCacheStats after_a = pdb->CacheStats();
  EXPECT_EQ(after_a.invalidations, 1u);
  EXPECT_EQ(after_a.hits, 2u);
  ASSERT_FALSE(fresh.value().tuples.empty());
  EXPECT_EQ(fresh.value().tuples.front().score, 0.0);
  EXPECT_NE(fresh.value().tuples, still.value().tuples);
}

// ---------------------------------------------------------------------------
// Concurrency (runs under TSan in CI): readers populating the cache race
// each other and runtime control calls, never a writer.

TEST(CacheConcurrencyTest, ConcurrentReadersWritersAndResizes) {
  RankCubeDb db(MakeTable(1500), DbPair::CachedOptions({}));
  std::vector<TopKQuery> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(QueryBuilder()
                       .Where(0, i % 5)
                       .OrderByLinear({1.0 + 0.1 * i, 2.0})
                       .Limit(10)
                       .Build());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 250; ++i) {
        TopKQuery q = pool[rng.UniformInt(pool.size())];
        if (rng.Uniform01() < 0.2) {  // near-duplicate: exercise reuse
          auto lin = std::make_shared<LinearFunction>(std::vector<double>{
              1.0 + 0.0001 * rng.Uniform01(), 2.0});
          q.function = lin;
        }
        if (!db.Query(q).ok()) failures.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    Rng rng(999);
    for (int i = 0; i < 30 && !stop.load(); ++i) {
      auto tid = db.Insert({static_cast<int32_t>(rng.UniformInt(5)),
                            static_cast<int32_t>(rng.UniformInt(4)),
                            static_cast<int32_t>(rng.UniformInt(3))},
                           {rng.Uniform01(), rng.Uniform01()});
      if (!tid.ok()) failures.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread control([&] {
    for (int i = 0; i < 10 && !stop.load(); ++i) {
      db.ResizeCache((i % 2 == 0) ? (1u << 20) : (8u << 20));
      (void)db.CacheStats();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    db.ClearCache();
  });
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  control.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: every pool query must agree with a scratch db holding the
  // same rows (the writer's inserts are deterministic given its seed, but
  // easier: compare against the same db with the cache cleared and
  // disabled).
  db.ClearCache();
  std::vector<std::vector<ScoredTuple>> uncached;
  db.ResizeCache(0);
  for (const TopKQuery& q : pool) {
    auto r = db.Query(q);
    ASSERT_TRUE(r.ok());
    uncached.push_back(r.value().tuples);
  }
  db.ResizeCache(8u << 20);
  for (size_t i = 0; i < pool.size(); ++i) {
    auto cold = db.Query(pool[i]);
    auto hit = db.Query(pool[i]);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(cold.value().tuples, uncached[i]);
    EXPECT_EQ(hit.value().tuples, uncached[i]);
  }
}

// ---------------------------------------------------------------------------
// True-cost planner feedback.

TEST(FeedbackTest, EwmaConvergesToTheMeasuredBias) {
  CostFeedback fb;
  // The cost model underestimates grid-family queries 2.5x. Observations
  // carry the *corrected* estimate, so the loop must drive the residual to
  // zero: corrected estimates converge to the measured pages.
  const double raw_estimate = 100.0, measured = 250.0;
  for (int i = 0; i < 60; ++i) {
    double corrected = raw_estimate * fb.Correction("grid");
    fb.Observe("grid", corrected, measured);
  }
  EXPECT_NEAR(fb.Correction("grid"), measured / raw_estimate, 0.1);
  // grid and fragments share one cuboid cost shape — one family.
  EXPECT_EQ(fb.Correction("fragments"), fb.Correction("grid"));
  // table_scan corrects under its own key: untouched.
  EXPECT_EQ(fb.Correction("table_scan"), 1.0);
}

TEST(FeedbackTest, OutliersAreClampedAndDisableIsAnIdentity) {
  CostFeedback fb;
  for (int i = 0; i < 200; ++i) fb.Observe("table_scan", 1.0, 1e9);
  EXPECT_LE(fb.Correction("table_scan"), 10.0);  // max_factor clamp
  for (int i = 0; i < 200; ++i) fb.Observe("signature", 1e9, 1.0);
  EXPECT_GE(fb.Correction("signature"), 0.1);  // min_factor clamp

  double learned = fb.Correction("table_scan");
  fb.set_enabled(false);
  EXPECT_EQ(fb.Correction("table_scan"), 1.0);  // identity while off
  fb.Observe("table_scan", 1.0, 1.0);           // no-op while off
  fb.set_enabled(true);
  EXPECT_EQ(fb.Correction("table_scan"), learned);  // state survived
}

TEST(FeedbackTest, DbRecordsObservationsAndResetForgets) {
  RankCubeDb db(MakeTable(800));
  for (int i = 0; i < 5; ++i) {
    TopKQuery q = QueryBuilder()
                      .Where(0, i % 5)
                      .OrderByLinear({1.0, 2.0 + i})
                      .Limit(10)
                      .Build();
    ASSERT_TRUE(db.Query(q).ok());
  }
  auto snapshot = db.FeedbackSnapshot();
  uint64_t total = 0;
  for (const auto& [family, state] : snapshot) {
    total += state.observations;
    EXPECT_GE(state.correction, 0.1);
    EXPECT_LE(state.correction, 10.0);
  }
  EXPECT_GE(total, 5u);

  db.ResetFeedback();
  for (const auto& [family, state] : db.FeedbackSnapshot()) {
    EXPECT_EQ(state.observations, 0u);
    EXPECT_EQ(state.correction, 1.0);
  }

  // Kill switch mirrors CostFeedback semantics through the db surface.
  db.SetFeedbackEnabled(false);
  TopKQuery q = QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(5).Build();
  ASSERT_TRUE(db.Query(q).ok());
  uint64_t after_disabled = 0;
  for (const auto& [family, state] : db.FeedbackSnapshot()) {
    after_disabled += state.observations;
  }
  EXPECT_EQ(after_disabled, 0u);
  db.SetFeedbackEnabled(true);
}

// ---------------------------------------------------------------------------
// CACHE wire verb.

class CacheServerTest : public ::testing::Test {
 protected:
  void StartServer(size_t cache_bytes) {
    SyntheticSpec spec;
    spec.num_rows = 2000;
    spec.num_sel_dims = 3;
    spec.cardinality = 5;
    spec.num_rank_dims = 2;
    spec.seed = 99;
    RankCubeDb::Options db_options;
    db_options.cache.max_bytes = cache_bytes;
    db_ = std::make_unique<RankCubeDb>(GenerateSynthetic(spec), db_options);
    server_ = std::make_unique<RankCubeServer>(db_.get(),
                                               RankCubeServer::Options{});
    Status s = server_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  RankCubeClient Connect() {
    auto client = RankCubeClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  static std::string Joined(const Response& r) {
    std::string out = r.message;
    for (const std::string& line : r.lines) out += "\n" + line;
    return out;
  }

  std::unique_ptr<RankCubeDb> db_;
  std::unique_ptr<RankCubeServer> server_;
};

TEST_F(CacheServerTest, StatsClearAndResizeRoundTrip) {
  StartServer(4u << 20);
  RankCubeClient client = Connect();

  WireQuerySpec spec;
  spec.k = 5;
  spec.order = "linear:1,2";
  spec.where = {{0, 3}};
  auto first = client.QueryTuples(spec);
  auto second = client.QueryTuples(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());

  auto stats = client.CacheStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats.value().ok()) << stats.value().message;
  std::string body = Joined(stats.value());
  EXPECT_NE(body.find("hits=1"), std::string::npos) << body;

  auto cleared = client.CacheClear();
  ASSERT_TRUE(cleared.ok());
  EXPECT_TRUE(cleared.value().ok());
  EXPECT_EQ(db_->CacheStats().entries, 0u);

  ASSERT_TRUE(client.CacheResize(1u << 20).ok());
  EXPECT_EQ(db_->CacheStats().max_bytes, 1u << 20);
}

TEST_F(CacheServerTest, DisabledCacheIsATypedErrorAndResizeReenables) {
  StartServer(0);  // --cache_mb=0
  RankCubeClient client = Connect();

  // Typed NOT_SUPPORTED through a healthy connection — not a transport
  // error.
  auto stats = client.CacheStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats.value().ok());
  EXPECT_EQ(stats.value().code, WireCode::kNotSupported);

  auto cleared = client.CacheClear();
  ASSERT_TRUE(cleared.ok());
  EXPECT_EQ(cleared.value().code, WireCode::kNotSupported);

  // Resize is the one verb that works on a disabled cache: it enables it.
  auto resized = client.CacheResize(2u << 20);
  ASSERT_TRUE(resized.ok());
  EXPECT_TRUE(resized.value().ok()) << resized.value().message;
  EXPECT_TRUE(db_->cache_enabled());
  auto stats2 = client.CacheStats();
  ASSERT_TRUE(stats2.ok());
  EXPECT_TRUE(stats2.value().ok());
}

}  // namespace
}  // namespace rankcube
