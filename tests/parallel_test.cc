// Parallel-execution parity: for every registered engine, a workload run
// through BatchExecutor::ExecuteParallel on a worker pool returns exactly
// the tuples sequential execution returns, in workload order — engines are
// const and data-race free, per-query state lives in each worker's
// IoSession, and the only cross-thread state is the PageStore's sharded
// cache. Run under ThreadSanitizer in CI (tsan job).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/registry.h"
#include "gen/queries.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

constexpr int kThreads = 4;

struct Fixture {
  Table table;
  PageStore store;
  IoSession io{&store};

  Fixture() : table(MakeTable()) {}

  static Table MakeTable() {
    SyntheticSpec spec;
    spec.num_rows = 3000;
    spec.num_sel_dims = 3;
    spec.cardinality = 5;
    spec.num_rank_dims = 2;
    spec.seed = 99;
    return GenerateSynthetic(spec);
  }

  std::vector<TopKQuery> Workload(int num_predicates, int num_queries = 24) {
    QueryWorkloadSpec spec;
    spec.num_queries = num_queries;
    spec.num_predicates = num_predicates;
    spec.num_rank_used = 2;
    spec.k = 5;
    spec.seed = 1234;
    return GenerateQueries(table, spec);
  }
};

TEST(ParallelParityTest, EveryEngineMatchesSequentialTupleForTuple) {
  Fixture fx;
  auto& registry = EngineRegistry::Global();

  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE("engine: " + name);
    auto engine = registry.Create(name, fx.table, fx.io);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    auto workload = fx.Workload((*engine)->SupportsPredicates() ? 2 : 0);
    ASSERT_FALSE(workload.empty());

    BatchExecutor batch(engine->get(), {.keep_results = true});
    auto seq = batch.ExecuteAll(workload, fx.store);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    ASSERT_EQ(seq.value().failed, 0u) << seq.value().first_error.ToString();

    auto par = batch.ExecuteParallel(workload, fx.store, kThreads);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par.value().failed, 0u) << par.value().first_error.ToString();
    ASSERT_EQ(par.value().results.size(), seq.value().results.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i) + ": " +
                   workload[i].ToString());
      EXPECT_EQ(par.value().results[i].tuples, seq.value().results[i].tuples);
    }
    // Logical work is deterministic; only cache hit/miss attribution may
    // shift between schedules.
    EXPECT_EQ(par.value().total.tuples_evaluated,
              seq.value().total.tuples_evaluated);
  }
}

TEST(ParallelParityTest, SharedCacheDoesNotChangeResults) {
  // A small shared cache maximizes cross-thread contention on the store;
  // results must still be identical (this is the TSan stress surface).
  Fixture fx;
  PageStore cached({.page_size = 4096, .cache_pages = 256,
                    .cache_shards = 4});
  IoSession build{&cached};
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("grid", fx.table, build);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto workload = fx.Workload(2, 32);
  BatchExecutor batch(engine->get(), {.keep_results = true});
  auto seq = batch.ExecuteAll(workload, cached);
  ASSERT_TRUE(seq.ok());
  auto par = batch.ExecuteParallel(workload, cached, kThreads);
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(par.value().results.size(), seq.value().results.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(par.value().results[i].tuples, seq.value().results[i].tuples);
  }
}

TEST(ParallelParityTest, ReportMergesDeterministically) {
  Fixture fx;
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("table_scan", fx.table, fx.io);
  ASSERT_TRUE(engine.ok());

  auto workload = fx.Workload(1, 16);
  BatchExecutor batch(engine->get(), {.record_latencies = true});
  auto a = batch.ExecuteParallel(workload, fx.store, kThreads);
  auto b = batch.ExecuteParallel(workload, fx.store, kThreads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().executed, workload.size());
  EXPECT_EQ(a.value().latencies_ms.size(), workload.size());
  // Counters that do not depend on timing or cache state are identical
  // across runs and thread schedules.
  EXPECT_EQ(a.value().total.tuples_evaluated, b.value().total.tuples_evaluated);
  EXPECT_EQ(a.value().total.pages_read, b.value().total.pages_read);
  EXPECT_EQ(a.value().physical_pages, b.value().physical_pages);
  EXPECT_GT(a.value().wall_ms, 0.0);
}

TEST(ParallelParityTest, PerQueryBudgetAppliesPerSession) {
  Fixture fx;
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("table_scan", fx.table, fx.io);
  ASSERT_TRUE(engine.ok());

  auto workload = fx.Workload(1, 8);
  // A 1-page budget fails every table_scan query, sequentially and in
  // parallel alike; budgets are charged against each query's own session,
  // not a shared global counter.
  BatchExecutor batch(engine->get(), {.page_budget = 1});
  auto seq = batch.ExecuteAll(workload, fx.store);
  auto par = batch.ExecuteParallel(workload, fx.store, kThreads);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.value().failed, workload.size());
  EXPECT_EQ(par.value().failed, workload.size());
  EXPECT_EQ(par.value().first_error.code(), Status::Code::kOutOfRange)
      << par.value().first_error.ToString();
}

}  // namespace
}  // namespace rankcube
