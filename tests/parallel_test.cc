// Parallel-execution parity: for every registered engine, a workload run
// through BatchExecutor::ExecuteParallel on a worker pool returns exactly
// the tuples sequential execution returns, in workload order — engines are
// const and data-race free, per-query state lives in each worker's
// IoSession, and the only cross-thread state is the PageStore's sharded
// cache. Run under ThreadSanitizer in CI (tsan job).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/batch_executor.h"
#include "engine/registry.h"
#include "gen/queries.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

constexpr int kThreads = 4;

struct Fixture {
  Table table;
  PageStore store;
  IoSession io{&store};

  Fixture() : table(MakeTable()) {}

  static Table MakeTable() {
    SyntheticSpec spec;
    spec.num_rows = 3000;
    spec.num_sel_dims = 3;
    spec.cardinality = 5;
    spec.num_rank_dims = 2;
    spec.seed = 99;
    return GenerateSynthetic(spec);
  }

  std::vector<TopKQuery> Workload(int num_predicates, int num_queries = 24) {
    QueryWorkloadSpec spec;
    spec.num_queries = num_queries;
    spec.num_predicates = num_predicates;
    spec.num_rank_used = 2;
    spec.k = 5;
    spec.seed = 1234;
    return GenerateQueries(table, spec);
  }
};

TEST(ParallelParityTest, EveryEngineMatchesSequentialTupleForTuple) {
  Fixture fx;
  auto& registry = EngineRegistry::Global();

  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE("engine: " + name);
    auto engine = registry.Create(name, fx.table, fx.io);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    auto workload = fx.Workload((*engine)->SupportsPredicates() ? 2 : 0);
    ASSERT_FALSE(workload.empty());

    BatchExecutor batch(engine->get(), {.keep_results = true});
    auto seq = batch.ExecuteAll(workload, fx.store);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    ASSERT_EQ(seq.value().failed, 0u) << seq.value().first_error.ToString();

    auto par = batch.ExecuteParallel(workload, fx.store, kThreads);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par.value().failed, 0u) << par.value().first_error.ToString();
    ASSERT_EQ(par.value().results.size(), seq.value().results.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i) + ": " +
                   workload[i].ToString());
      EXPECT_EQ(par.value().results[i].tuples, seq.value().results[i].tuples);
    }
    // Logical work is deterministic; only cache hit/miss attribution may
    // shift between schedules.
    EXPECT_EQ(par.value().total.tuples_evaluated,
              seq.value().total.tuples_evaluated);
  }
}

TEST(ParallelParityTest, SharedCacheDoesNotChangeResults) {
  // A small shared cache maximizes cross-thread contention on the store;
  // results must still be identical (this is the TSan stress surface).
  Fixture fx;
  PageStore cached({.page_size = 4096, .cache_pages = 256,
                    .cache_shards = 4});
  IoSession build{&cached};
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("grid", fx.table, build);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto workload = fx.Workload(2, 32);
  BatchExecutor batch(engine->get(), {.keep_results = true});
  auto seq = batch.ExecuteAll(workload, cached);
  ASSERT_TRUE(seq.ok());
  auto par = batch.ExecuteParallel(workload, cached, kThreads);
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(par.value().results.size(), seq.value().results.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(par.value().results[i].tuples, seq.value().results[i].tuples);
  }
}

TEST(ParallelParityTest, ReportMergesDeterministically) {
  Fixture fx;
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("table_scan", fx.table, fx.io);
  ASSERT_TRUE(engine.ok());

  auto workload = fx.Workload(1, 16);
  BatchExecutor batch(engine->get(), {.record_latencies = true});
  auto a = batch.ExecuteParallel(workload, fx.store, kThreads);
  auto b = batch.ExecuteParallel(workload, fx.store, kThreads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().executed, workload.size());
  EXPECT_EQ(a.value().latencies_ms.size(), workload.size());
  // Counters that do not depend on timing or cache state are identical
  // across runs and thread schedules.
  EXPECT_EQ(a.value().total.tuples_evaluated, b.value().total.tuples_evaluated);
  EXPECT_EQ(a.value().total.pages_read, b.value().total.pages_read);
  EXPECT_EQ(a.value().physical_pages, b.value().physical_pages);
  EXPECT_GT(a.value().wall_ms, 0.0);
}

TEST(ParallelParityTest, PerQueryBudgetAppliesPerSession) {
  Fixture fx;
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("table_scan", fx.table, fx.io);
  ASSERT_TRUE(engine.ok());

  auto workload = fx.Workload(1, 8);
  // A 1-page budget fails every table_scan query, sequentially and in
  // parallel alike; budgets are charged against each query's own session,
  // not a shared global counter.
  BatchExecutor batch(engine->get(), {.page_budget = 1});
  auto seq = batch.ExecuteAll(workload, fx.store);
  auto par = batch.ExecuteParallel(workload, fx.store, kThreads);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.value().failed, workload.size());
  EXPECT_EQ(par.value().failed, workload.size());
  EXPECT_EQ(par.value().first_error.code(), Status::Code::kOutOfRange)
      << par.value().first_error.ToString();
}

TEST(ParallelParityTest, PageAttributionIsExactUnderSharedCache) {
  // Regression for the old ExecuteParallel caveat: with a shared cache,
  // physical_pages used to depend on which thread warmed which page first.
  // Charged pages are now metered against each session's private
  // accounting cache, so the count is identical across thread counts and
  // equal to the sequential run — even on a store whose shared cache is
  // hot, cold, or contended.
  Fixture fx;
  PageStore cached({.page_size = 4096, .cache_pages = 256,
                    .cache_shards = 4});
  IoSession build{&cached};
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("grid", fx.table, build);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto workload = fx.Workload(2, 32);
  BatchExecutor batch(engine->get(), {});
  auto seq = batch.ExecuteAll(workload, cached);
  ASSERT_TRUE(seq.ok());
  ASSERT_EQ(seq.value().failed, 0u) << seq.value().first_error.ToString();
  const uint64_t expected = seq.value().physical_pages;
  EXPECT_GT(expected, 0u);

  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto par = batch.ExecuteParallel(workload, cached, threads);
    ASSERT_TRUE(par.ok());
    ASSERT_EQ(par.value().failed, 0u) << par.value().first_error.ToString();
    EXPECT_EQ(par.value().physical_pages, expected);
    // Device reads remain schedule-dependent, but never exceed the charged
    // total: the private accounting cache is seeded cold, the shared cache
    // may already be warm.
    EXPECT_LE(par.value().device_pages, expected);
  }
}

TEST(ParallelParityTest, BudgetVerdictsAreScheduleIndependent) {
  // A budget chosen between two queries' charged footprints must fail the
  // same queries at every thread count. Under the old shared-cache
  // attribution a lucky schedule could squeeze an expensive query under
  // budget; with per-session accounting the verdict is a pure function of
  // the query.
  Fixture fx;
  PageStore cached({.page_size = 4096, .cache_pages = 1024,
                    .cache_shards = 4});
  IoSession build{&cached};
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("grid", fx.table, build);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto workload = fx.Workload(2, 24);
  // Find a budget that splits the workload: run unconstrained, take the
  // median per-query charged count.
  BatchExecutor unconstrained(engine->get(), {.keep_results = true});
  auto base = unconstrained.ExecuteAll(workload, cached);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base.value().failed, 0u);
  std::vector<uint64_t> per_query;
  for (const auto& r : base.value().results) {
    per_query.push_back(r.stats.pages_read);
  }
  std::vector<uint64_t> sorted = per_query;
  std::sort(sorted.begin(), sorted.end());
  const uint64_t budget = sorted[sorted.size() / 2];

  // Which queries must fail is known in advance from the sequential run.
  size_t expected_failures = 0;
  for (uint64_t pages : per_query) {
    if (pages > budget) ++expected_failures;
  }
  ASSERT_GT(expected_failures, 0u);
  ASSERT_LT(expected_failures, workload.size());

  BatchExecutor batch(engine->get(), {.page_budget = budget});
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto par = batch.ExecuteParallel(workload, cached, threads);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(par.value().failed, expected_failures);
    EXPECT_EQ(par.value().first_error.code(), Status::Code::kOutOfRange)
        << par.value().first_error.ToString();
  }
}

TEST(ParallelParityTest, BatchDeadlineProducesTypedError) {
  Fixture fx;
  // Make every page cost real time so a 0-ms... rather, a 1-ms deadline
  // reliably lapses mid-query on a full scan.
  PageStore slow({.page_size = 4096, .read_latency_us = 500});
  IoSession build{&slow};
  auto& registry = EngineRegistry::Global();
  auto engine = registry.Create("table_scan", fx.table, build);
  ASSERT_TRUE(engine.ok());

  auto workload = fx.Workload(1, 4);
  BatchExecutor batch(engine->get(), {.deadline_ms = 1});
  auto par = batch.ExecuteParallel(workload, slow, 2);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par.value().failed, workload.size());
  EXPECT_EQ(par.value().first_error.code(), Status::Code::kDeadlineExceeded)
      << par.value().first_error.ToString();
}

}  // namespace
}  // namespace rankcube
