// Randomized stress tests for the Ch5 engines: across many random
// functions, seeds and ks, PE / PE+SIG / BL must return identical score
// sequences (BL is itself validated against the brute-force oracle).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "merge/index_merge.h"
#include "reference.h"

namespace rankcube {
namespace {

RankingFunctionPtr RandomFunction(Rng* rng, int dims) {
  switch (rng->UniformInt(5)) {
    case 0: {
      std::vector<double> w(dims);
      for (auto& v : w) v = rng->Uniform(0.1, 3.0);
      return std::make_shared<LinearFunction>(std::move(w));
    }
    case 1: {
      std::vector<double> w(dims);
      for (auto& v : w) v = rng->Uniform(-2.0, 2.0);
      if (w[0] == 0) w[0] = 1.0;
      return std::make_shared<LinearFunction>(std::move(w));
    }
    case 2: {
      std::vector<double> w(dims), t(dims);
      for (auto& v : w) v = rng->Uniform(0.5, 2.0);
      for (auto& v : t) v = rng->Uniform01();
      return std::make_shared<QuadraticDistance>(std::move(w), std::move(t));
    }
    case 3:
      return std::make_shared<GeneralAB>(dims, 0, dims > 1 ? 1 : 0);
    default: {
      double lo = rng->Uniform(0.0, 0.5);
      return std::make_shared<ConstrainedSum>(dims, 0, dims > 1 ? 1 : 0, lo,
                                              lo + rng->Uniform(0.1, 0.5));
    }
  }
}

class MergeStressTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeStressTest, AllModesAgreeWithOracle) {
  const int seed = GetParam();
  Rng rng(seed);
  SyntheticSpec spec;
  spec.num_rows = 1500 + rng.UniformInt(1500);
  spec.num_sel_dims = 1;
  spec.cardinality = 2;
  spec.num_rank_dims = 2;
  spec.seed = static_cast<uint64_t>(seed) * 13 + 1;
  spec.distribution = static_cast<RankDistribution>(rng.UniformInt(3));
  Table table = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};

  int fanout = 4 + static_cast<int>(rng.UniformInt(12));
  BTree b0(table, 0, io, {.fanout = fanout});
  BTree b1(table, 1, io, {.fanout = fanout});
  BTreeMergeIndex m0(&b0, 0), m1(&b1, 1);
  std::vector<const MergeIndex*> indices{&m0, &m1};
  JoinSignature sig(indices);

  for (int trial = 0; trial < 6; ++trial) {
    auto f = RandomFunction(&rng, 2);
    int k = 1 + static_cast<int>(rng.UniformInt(40));
    TopKQuery q;
    q.function = f;
    q.k = k;
    auto oracle = ScoresOf(BruteForceTopK(table, q));

    MergeOptions bl;
    bl.mode = MergeOptions::Mode::kBaseline;
    ExecStats s1;
    EXPECT_EQ(ScoresOf(IndexMergeTopK(table, indices, f, k, bl, &io, &s1)),
              oracle)
        << "BL " << f->ToString() << " k=" << k;

    MergeOptions pe;
    ExecStats s2;
    EXPECT_EQ(ScoresOf(IndexMergeTopK(table, indices, f, k, pe, &io, &s2)),
              oracle)
        << "PE " << f->ToString() << " k=" << k;

    MergeOptions ps;
    ps.signatures = {&sig};
    ps.signature_positions = {{0, 1}};
    ExecStats s3;
    EXPECT_EQ(ScoresOf(IndexMergeTopK(table, indices, f, k, ps, &io, &s3)),
              oracle)
        << "PE+SIG " << f->ToString() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeStressTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace rankcube
