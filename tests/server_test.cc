// Serving-layer coverage: wire framing and parsing, the typed error
// contract, tenant admission (quota rejections under real concurrency —
// this test runs in the TSan CI job), and the server surviving abusive or
// vanishing clients. Everything network-facing runs against a live
// RankCubeServer on a loopback ephemeral port.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "planner/rank_cube_db.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace rankcube {
namespace {

// ---------------------------------------------------------------------------
// Protocol unit tests (no sockets).

TEST(ProtocolTest, FrameRoundTripSurvivesAnyFragmentation) {
  const std::string payload = "QUERY k=5 order=linear:1,2";
  std::string wire = EncodeFrame(payload) + EncodeFrame("PING") +
                     EncodeFrame("");  // empty frames are legal
  FrameReader reader;
  std::vector<std::string> decoded;
  // Worst case: one byte at a time.
  for (char c : wire) {
    reader.Feed(&c, 1);
    std::string out;
    while (true) {
      auto has = reader.Next(&out);
      ASSERT_TRUE(has.ok()) << has.status().ToString();
      if (!has.value()) break;
      decoded.push_back(out);
    }
  }
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], payload);
  EXPECT_EQ(decoded[1], "PING");
  EXPECT_EQ(decoded[2], "");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ProtocolTest, OversizedFrameAnnouncementIsAnError) {
  FrameReader reader(/*max_frame_bytes=*/16);
  std::string wire = EncodeFrame(std::string(17, 'x'));
  reader.Feed(wire.data(), 4);  // header alone is enough to reject
  std::string out;
  auto has = reader.Next(&out);
  EXPECT_FALSE(has.ok());
  EXPECT_EQ(has.status().code(), Status::Code::kInvalidArgument);
}

TEST(ProtocolTest, ParseRequestUppercasesVerbAndSplitsArgs) {
  auto req = ParseRequest("query k=10 order=linear:1,2 where=0:3");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().verb, "QUERY");
  ASSERT_EQ(req.value().args.size(), 3u);
  ASSERT_NE(req.value().Find("order"), nullptr);
  EXPECT_EQ(*req.value().Find("order"), "linear:1,2");
  EXPECT_EQ(req.value().Find("nope"), nullptr);
}

TEST(ProtocolTest, ParseRequestRejectsMalformedInput) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("   ").ok());
  EXPECT_FALSE(ParseRequest("QUERY k").ok());       // no '='
  EXPECT_FALSE(ParseRequest("QUERY =value").ok());  // empty key
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response ok = Response::Ok();
  ok.lines = {"tuples=2", "7 0.5", "9 0.25"};
  auto parsed = Response::Parse(ok.Encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ok());
  EXPECT_EQ(parsed.value().lines, ok.lines);

  Response err = Response::Error(WireCode::kQuotaExceeded,
                                 "tenant 'a' at its in-flight limit");
  auto parsed_err = Response::Parse(err.Encode());
  ASSERT_TRUE(parsed_err.ok());
  EXPECT_EQ(parsed_err.value().code, WireCode::kQuotaExceeded);
  EXPECT_EQ(parsed_err.value().message, err.message);
}

TEST(ProtocolTest, StatusMapsToTypedWireCodes) {
  EXPECT_EQ(WireCodeFromStatus(Status::OutOfRange("budget")),
            WireCode::kBudgetExceeded);
  EXPECT_EQ(WireCodeFromStatus(Status::DeadlineExceeded("slow")),
            WireCode::kDeadlineExceeded);
  EXPECT_EQ(WireCodeFromStatus(Status::ResourceExhausted("quota")),
            WireCode::kQuotaExceeded);
  EXPECT_EQ(WireCodeFromStatus(Status::InvalidArgument("bad")),
            WireCode::kBadRequest);
  EXPECT_EQ(WireCodeFromName(WireCodeName(WireCode::kDeadlineExceeded)),
            WireCode::kDeadlineExceeded);
}

TEST(ProtocolTest, ParseWireQueryBuildsAndValidates) {
  TableSchema schema;
  schema.sel_cardinality = {5, 5, 5};
  schema.num_rank_dims = 2;

  auto req = ParseRequest("QUERY k=3 order=linear:1,2 where=0:4,2:1");
  ASSERT_TRUE(req.ok());
  auto query = ParseWireQuery(req.value(), schema);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.value().k, 3);
  ASSERT_EQ(query.value().predicates.size(), 2u);
  EXPECT_EQ(query.value().predicates[1].dim, 2);

  // Distance kinds need one target per weight.
  auto l1 = ParseRequest("QUERY order=l1:1,1@0.5,0.5");
  ASSERT_TRUE(l1.ok());
  EXPECT_TRUE(ParseWireQuery(l1.value(), schema).ok());
  auto bad_l1 = ParseRequest("QUERY order=l1:1,1@0.5");
  ASSERT_TRUE(bad_l1.ok());
  EXPECT_FALSE(ParseWireQuery(bad_l1.value(), schema).ok());

  // Validation failures: missing order, unknown kind, out-of-domain
  // predicate, wrong weight count.
  for (const char* bad :
       {"QUERY k=3", "QUERY order=cubic:1,2", "QUERY order=linear:1,2,3",
        "QUERY order=linear:1,2 where=9:1", "QUERY order=linear:1,2 k=0",
        "QUERY order=linear:1,2 where=0:banana"}) {
    SCOPED_TRACE(bad);
    auto r = ParseRequest(bad);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(ParseWireQuery(r.value(), schema).ok());
  }
}

// ---------------------------------------------------------------------------
// Admission unit tests (no sockets).

TEST(AdmissionTest, RejectsAtInflightLimitAndReleasesOnTicketDeath) {
  AdmissionController admission(TenantQuota{/*max_inflight=*/2, 0, 0});
  auto t1 = admission.Admit("a");
  auto t2 = admission.Admit("a");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto rejected = admission.Admit("a");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kResourceExhausted);
  // Other tenants are unaffected.
  EXPECT_TRUE(admission.Admit("b").ok());

  t1.value().set_ok(true);
  { auto dying = std::move(t1); }  // slot released here
  EXPECT_TRUE(admission.Admit("a").ok());

  auto snapshot = admission.Snapshot();
  EXPECT_EQ(snapshot["a"].admitted, 3u);
  EXPECT_EQ(snapshot["a"].rejected, 1u);
  EXPECT_EQ(snapshot["a"].completed, 1u);
}

TEST(AdmissionTest, ClampBoundsRequestsByTenantQuota) {
  AdmissionController admission;
  admission.SetQuota("a", TenantQuota{0, /*page_budget=*/100,
                                      /*deadline_ms=*/50});
  // Unspecified request inherits the caps; an over-ask is clamped down; a
  // smaller ask is honored.
  EXPECT_EQ(admission.Clamp("a", 0, 0), (std::pair<uint64_t, uint64_t>{100, 50}));
  EXPECT_EQ(admission.Clamp("a", 500, 500),
            (std::pair<uint64_t, uint64_t>{100, 50}));
  EXPECT_EQ(admission.Clamp("a", 10, 5),
            (std::pair<uint64_t, uint64_t>{10, 5}));
  // Unlimited tenant passes requests through.
  EXPECT_EQ(admission.Clamp("b", 7, 0), (std::pair<uint64_t, uint64_t>{7, 0}));
}

// ---------------------------------------------------------------------------
// End-to-end server tests.

class ServerTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kSlowPageUs = 500;

  void StartServer(RankCubeServer::Options options,
                   uint32_t latency_us = 0) {
    SyntheticSpec spec;
    spec.num_rows = 3000;
    spec.num_sel_dims = 3;
    spec.cardinality = 5;
    spec.num_rank_dims = 2;
    spec.seed = 99;
    RankCubeDb::Options db_options;
    db_options.store.cache_pages = 512;
    db_options.store.read_latency_us = latency_us;
    db_ = std::make_unique<RankCubeDb>(GenerateSynthetic(spec), db_options);
    server_ = std::make_unique<RankCubeServer>(db_.get(), options);
    Status s = server_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  RankCubeClient Connect() {
    auto client = RankCubeClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::unique_ptr<RankCubeDb> db_;
  std::unique_ptr<RankCubeServer> server_;
};

TEST_F(ServerTest, ServesQueriesMatchingDirectExecution) {
  StartServer({});
  RankCubeClient client = Connect();
  ASSERT_TRUE(client.Ping().ok());

  WireQuerySpec spec;
  spec.k = 5;
  spec.order = "linear:1,2";
  spec.where = {{0, 3}};
  auto tuples = client.QueryTuples(spec);
  ASSERT_TRUE(tuples.ok()) << tuples.status().ToString();
  ASSERT_EQ(tuples.value().size(), 5u);

  // The wire answer is byte-identical to asking the db directly.
  TopKQuery query;
  query.k = 5;
  query.function = std::make_shared<LinearFunction>(std::vector<double>{1, 2});
  query.predicates.push_back({0, 3});
  auto direct = db_->Query(query);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(tuples.value(), direct.value().tuples);
}

TEST_F(ServerTest, ExplainInsertDeleteCompactStatsRoundTrip) {
  StartServer({});
  RankCubeClient client = Connect();

  WireQuerySpec spec;
  spec.k = 5;
  spec.order = "linear:1,1";
  auto explain = client.Explain(spec);
  ASSERT_TRUE(explain.ok());
  ASSERT_TRUE(explain.value().ok()) << explain.value().message;
  ASSERT_FALSE(explain.value().lines.empty());
  EXPECT_EQ(explain.value().lines[0].rfind("plan: ", 0), 0u);

  auto insert = client.Insert({1, 2, 3}, {0.9, 0.1});
  ASSERT_TRUE(insert.ok());
  ASSERT_TRUE(insert.value().ok()) << insert.value().message;
  ASSERT_EQ(insert.value().lines.size(), 1u);
  EXPECT_EQ(insert.value().lines[0], "tid=3000");

  auto del = client.Delete(3000);
  ASSERT_TRUE(del.ok());
  EXPECT_TRUE(del.value().ok()) << del.value().message;
  // Deleting a tombstoned tid is a typed error, not a hang-up.
  auto again = client.Delete(3000);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().ok());

  auto compact = client.Compact();
  ASSERT_TRUE(compact.ok());
  ASSERT_TRUE(compact.value().ok()) << compact.value().message;

  // One executed query materializes the "default" tenant in the
  // admission snapshot STATS reports.
  auto query = client.Query(spec);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(query.value().ok()) << query.value().message;

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats.value().ok());
  bool saw_rows = false;
  bool saw_tenant = false;
  for (const std::string& line : stats.value().lines) {
    if (line == "rows=3001") saw_rows = true;
    if (line.rfind("tenant.default.", 0) == 0) saw_tenant = true;
  }
  EXPECT_TRUE(saw_rows);
  EXPECT_TRUE(saw_tenant);
}

TEST_F(ServerTest, MalformedRequestsGetTypedErrorsNotDisconnects) {
  StartServer({});
  RankCubeClient client = Connect();
  for (const char* bad :
       {"", "FROBNICATE", "QUERY k", "QUERY order=cubic:1,2",
        "QUERY order=linear:1,2 where=0:banana", "DELETE tid=-1",
        "INSERT sel=1,2,3"}) {
    SCOPED_TRACE(std::string("payload: '") + bad + "'");
    auto resp = client.Call(bad);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().code, WireCode::kBadRequest)
        << resp.value().message;
  }
  // The connection is still healthy after every rejection.
  auto ping = client.Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping.value().ok());
}

TEST_F(ServerTest, OversizedFrameIsRejectedThenDisconnected) {
  RankCubeServer::Options options;
  options.max_frame_bytes = 64;
  StartServer(options);
  RankCubeClient client = Connect();

  auto resp = client.Call(std::string(65, 'x'));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().code, WireCode::kTooLarge);
  // The server hangs up after the error (it cannot resync the stream) — a
  // reconnect-disabled client observes the raw disconnect.
  ReconnectPolicy no_retry;
  no_retry.enabled = false;
  client.set_reconnect_policy(no_retry);
  auto after = client.Ping();
  EXPECT_FALSE(after.ok());

  // And the server is still serving new connections.
  RankCubeClient fresh = Connect();
  ASSERT_TRUE(fresh.Ping().ok());
  EXPECT_EQ(server_->counters().protocol_errors, 1u);
}

TEST_F(ServerTest, BudgetAndDeadlineProduceDistinctWireCodes) {
  RankCubeServer::Options options;
  options.tenant_quotas["tight"] = TenantQuota{0, /*page_budget=*/1, 0};
  options.tenant_quotas["slow"] = TenantQuota{0, 0, /*deadline_ms=*/1};
  StartServer(options, kSlowPageUs);

  WireQuerySpec scan;
  scan.k = 5;
  scan.order = "linear:1,2";
  scan.engine = "table_scan";  // unconditionally many pages

  RankCubeClient tight = Connect();
  ASSERT_TRUE(tight.Hello("tight").ok());
  auto budget = tight.Query(scan);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(budget.value().code, WireCode::kBudgetExceeded)
      << budget.value().message;

  RankCubeClient slow = Connect();
  ASSERT_TRUE(slow.Hello("slow").ok());
  auto deadline = slow.Query(scan);
  ASSERT_TRUE(deadline.ok());
  EXPECT_EQ(deadline.value().code, WireCode::kDeadlineExceeded)
      << deadline.value().message;

  // A request asking beyond its tenant cap is clamped, not honored.
  WireQuerySpec greedy = scan;
  greedy.budget = 1000000;
  auto clamped = tight.Query(greedy);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped.value().code, WireCode::kBudgetExceeded);
}

TEST_F(ServerTest, ConcurrentTenantsHitInflightQuotaWithTypedRejections) {
  RankCubeServer::Options options;
  options.tenant_quotas["a"] = TenantQuota{/*max_inflight=*/1, 0, 0};
  options.tenant_quotas["b"] = TenantQuota{/*max_inflight=*/4, 0, 0};
  StartServer(options, kSlowPageUs);  // slow pages keep queries in flight

  WireQuerySpec spec;
  spec.k = 5;
  spec.order = "linear:1,2";
  spec.engine = "table_scan";

  constexpr int kThreadsPerTenant = 4;
  constexpr int kRequests = 6;
  std::atomic<int> a_ok{0}, a_rejected{0}, b_ok{0}, b_rejected{0};
  std::vector<std::thread> threads;
  for (const char* tenant : {"a", "b"}) {
    for (int t = 0; t < kThreadsPerTenant; ++t) {
      threads.emplace_back([&, tenant] {
        auto client =
            RankCubeClient::Connect("127.0.0.1", server_->port());
        ASSERT_TRUE(client.ok());
        ASSERT_TRUE(client.value().Hello(tenant).ok());
        for (int i = 0; i < kRequests; ++i) {
          auto resp = client.value().Query(spec);
          ASSERT_TRUE(resp.ok()) << resp.status().ToString();
          std::atomic<int>& ok = *tenant == 'a' ? a_ok : b_ok;
          std::atomic<int>& rej = *tenant == 'a' ? a_rejected : b_rejected;
          if (resp.value().ok()) {
            ++ok;
          } else {
            ASSERT_EQ(resp.value().code, WireCode::kQuotaExceeded)
                << resp.value().message;
            ++rej;
          }
        }
      });
    }
  }
  for (auto& t : threads) t.join();

  // Every request got a definite answer...
  EXPECT_EQ(a_ok + a_rejected, kThreadsPerTenant * kRequests);
  EXPECT_EQ(b_ok + b_rejected, kThreadsPerTenant * kRequests);
  // ...tenant "a" (1 slot, 4 connections) was actually throttled, and both
  // tenants still made progress.
  EXPECT_GT(a_ok.load(), 0);
  EXPECT_GT(a_rejected.load(), 0);
  EXPECT_GT(b_ok.load(), 0);

  auto snapshot = server_->admission().Snapshot();
  EXPECT_EQ(snapshot["a"].inflight, 0u);
  EXPECT_EQ(snapshot["b"].inflight, 0u);
  EXPECT_EQ(snapshot["a"].rejected,
            static_cast<uint64_t>(a_rejected.load()));
}

TEST_F(ServerTest, SurvivesClientDisconnectMidQuery) {
  StartServer({}, kSlowPageUs);
  for (int i = 0; i < 3; ++i) {
    RankCubeClient client = Connect();
    ASSERT_TRUE(client.Ping().ok());
    // Fire a slow full scan and vanish before the response arrives: the
    // server's send hits a dead socket mid-query and must shrug it off
    // (MSG_NOSIGNAL, RAII ticket/lock unwinding).
    ASSERT_TRUE(
        client.Send("QUERY k=5 order=linear:1,2 engine=table_scan").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    client.CloseAbruptly();
  }
  // Server is alive and the writer path still works end to end.
  RankCubeClient fresh = Connect();
  auto insert = fresh.Insert({1, 1, 1}, {0.5, 0.5});
  ASSERT_TRUE(insert.ok());
  EXPECT_TRUE(insert.value().ok());
  auto stats = fresh.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().ok());
}

TEST_F(ServerTest, StopUnblocksIdleConnections) {
  StartServer({});
  RankCubeClient client = Connect();
  ASSERT_TRUE(client.Ping().ok());
  server_->Stop();  // must join the idle connection's thread promptly
  EXPECT_FALSE(server_->running());
  auto after = client.Ping();
  EXPECT_FALSE(after.ok());
}

TEST_F(ServerTest, PortZeroBindsEphemeralAndIsReadBack) {
  RankCubeServer::Options options;
  options.port = 0;  // the OS picks; port() must report the real one
  StartServer(options);
  ASSERT_NE(server_->port(), 0);
  auto client = RankCubeClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto ping = client.value().Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_TRUE(ping.value().ok());
}

TEST_F(ServerTest, IdempotentVerbsReconnectAfterHangupAndReplayHello) {
  // An oversized frame makes the server hang up on us — a deterministic
  // server-side disconnect. The next idempotent verb must redial, replay
  // the HELLO tenant binding, and succeed without the caller noticing.
  RankCubeServer::Options options;
  options.max_frame_bytes = 64;
  StartServer(options);
  RankCubeClient client = Connect();
  ReconnectPolicy fast;
  fast.base_delay_ms = 1;
  fast.max_delay_ms = 4;
  client.set_reconnect_policy(fast);
  ASSERT_TRUE(client.Hello("tenant-r").ok());

  for (uint64_t round = 1; round <= 2; ++round) {
    auto resp = client.Call(std::string(65, 'x'));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.value().code, WireCode::kTooLarge);

    WireQuerySpec spec;
    spec.k = 3;
    spec.order = "linear:1,2";
    auto query = client.Query(spec);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    EXPECT_TRUE(query.value().ok()) << query.value().message;
    EXPECT_EQ(client.reconnects(), round);
  }
  // The replayed HELLO kept the tenant binding: the admission controller
  // accounted this traffic to "tenant-r", not the default tenant.
  auto snapshot = server_->admission().Snapshot();
  EXPECT_GT(snapshot["tenant-r"].admitted, 0u);
}

TEST_F(ServerTest, MutatingVerbsAreNeverAutoRetried) {
  StartServer({});
  RankCubeClient client = Connect();
  ASSERT_TRUE(client.Ping().ok());
  // Sever the transport: an idempotent verb would transparently redial
  // here, but INSERT must fail fast — the original may have committed, and
  // a blind resend would double-apply it.
  client.CloseAbruptly();
  auto insert = client.Insert({1, 1, 1}, {0.5, 0.5});
  EXPECT_FALSE(insert.ok());
  auto del = client.Delete(0);
  EXPECT_FALSE(del.ok());
  EXPECT_EQ(client.reconnects(), 0u);
  // The same client then recovers via the next idempotent verb.
  auto ping = client.Ping();
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_TRUE(ping.value().ok());
  EXPECT_EQ(client.reconnects(), 1u);
}

// RankCubeDb::Stats consistency through the server-independent API.
TEST(DbStatsTest, SnapshotReflectsWritesQueriesAndCompaction) {
  SyntheticSpec spec;
  spec.num_rows = 2000;
  spec.num_sel_dims = 3;
  spec.cardinality = 5;
  spec.num_rank_dims = 2;
  spec.seed = 7;
  RankCubeDb::Options options;
  options.store.cache_pages = 256;
  RankCubeDb db(GenerateSynthetic(spec), options);

  DbStats before = db.Stats();
  EXPECT_EQ(before.rows, 2000u);
  EXPECT_EQ(before.live_rows, 2000u);
  EXPECT_EQ(before.queries_executed, 0u);
  EXPECT_EQ(before.engines_built, 0u);

  auto tid = db.Insert({1, 2, 3}, {0.4, 0.6});
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE(db.Delete(0).ok());

  TopKQuery query;
  query.k = 5;
  query.function = std::make_shared<LinearFunction>(std::vector<double>{1, 1});
  ASSERT_TRUE(db.Query(query).ok());
  QueryOptions bad;
  bad.page_budget = 1;
  bad.force_engine = "table_scan";
  EXPECT_FALSE(db.Query(query, bad).ok());

  DbStats mid = db.Stats();
  EXPECT_EQ(mid.rows, 2001u);
  EXPECT_EQ(mid.live_rows, 2000u);
  EXPECT_EQ(mid.pending_inserts, 1u);
  EXPECT_EQ(mid.pending_deletes, 1u);
  EXPECT_EQ(mid.queries_executed, 2u);
  EXPECT_EQ(mid.query_failures, 1u);
  EXPECT_GT(mid.pages_logical, 0u);
  EXPECT_GE(mid.engines_built, 1u);
  EXPECT_GE(mid.cache_hit_rate, 0.0);
  EXPECT_LE(mid.cache_hit_rate, 1.0);
  // ToString carries one key=value line per scalar field.
  EXPECT_NE(mid.ToString().find("rows=2001"), std::string::npos);
  EXPECT_NE(mid.ToString().find("queries_executed=2"), std::string::npos);

  ASSERT_TRUE(db.Compact().ok());
  DbStats after = db.Stats();
  EXPECT_EQ(after.pending_inserts, 0u);
  EXPECT_EQ(after.pending_deletes, 0u);
  EXPECT_EQ(after.epoch, after.compacted_epoch);
  for (const auto& [name, freshness] : after.freshness) {
    EXPECT_TRUE(freshness.fresh()) << name;
  }
}

}  // namespace
}  // namespace rankcube
