#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/synthetic.h"
#include "skyline/olap_session.h"
#include "skyline/skyline_cube.h"

namespace rankcube {
namespace {

Table MakeData(uint64_t rows, RankDistribution dist, int rank_dims = 2,
               uint64_t seed = 41) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = 3;
  spec.cardinality = 4;
  spec.num_rank_dims = rank_dims;
  spec.distribution = dist;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

/// Independent O(n^2) oracle (not SkylineOfTuples, to avoid shared bugs).
std::set<Tid> OracleSkyline(const Table& t,
                            const std::vector<Predicate>& preds,
                            const SkylineTransform& tf) {
  std::vector<Tid> qual;
  for (Tid i = 0; i < static_cast<Tid>(t.num_rows()); ++i) {
    bool ok = true;
    for (const auto& p : preds) {
      if (t.sel(i, p.dim) != p.value) ok = false;
    }
    if (ok) qual.push_back(i);
  }
  std::vector<std::vector<double>> tr(qual.size());
  std::vector<double> row(t.num_rank_dims());
  for (size_t i = 0; i < qual.size(); ++i) {
    t.CopyRankRow(qual[i], row.data());
    tf.Apply(row.data(), &tr[i]);
  }
  std::set<Tid> sky;
  for (size_t i = 0; i < qual.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < qual.size() && !dominated; ++j) {
      if (i == j) continue;
      bool all = true, strict = false;
      for (size_t d = 0; d < tr[i].size(); ++d) {
        if (tr[j][d] > tr[i][d]) all = false;
        if (tr[j][d] < tr[i][d]) strict = true;
      }
      dominated = all && strict;
    }
    if (!dominated) sky.insert(qual[i]);
  }
  return sky;
}

std::set<Tid> AsSet(const std::vector<Tid>& v) {
  return std::set<Tid>(v.begin(), v.end());
}

class SkylineParamTest
    : public ::testing::TestWithParam<RankDistribution> {};

TEST_P(SkylineParamTest, AllThreeMethodsMatchOracle) {
  Table t = MakeData(3000, GetParam());
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineTransform tf = SkylineTransform::Static(2);
  std::vector<Predicate> preds = {{0, t.sel(5, 0)}};
  auto oracle = OracleSkyline(t, preds, tf);

  ExecStats s1, s2, s3;
  auto sig = engine.Signature(preds, tf, &io, &s1);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(AsSet(*sig), oracle);
  EXPECT_EQ(AsSet(engine.RankingFirst(preds, tf, &io, &s2)), oracle);
  EXPECT_EQ(AsSet(engine.BooleanFirst(preds, tf, &io, &s3)), oracle);
}

INSTANTIATE_TEST_SUITE_P(Distributions, SkylineParamTest,
                         ::testing::Values(RankDistribution::kUniform,
                                           RankDistribution::kCorrelated,
                                           RankDistribution::kAntiCorrelated));

TEST(SkylineTest, NoPredicates) {
  Table t = MakeData(2000, RankDistribution::kUniform);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineTransform tf = SkylineTransform::Static(2);
  auto oracle = OracleSkyline(t, {}, tf);
  ExecStats stats;
  auto res = engine.Signature({}, tf, &io, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(AsSet(*res), oracle);
}

TEST(SkylineTest, DynamicSkyline) {
  Table t = MakeData(2500, RankDistribution::kUniform);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineTransform tf = SkylineTransform::Dynamic({0.45, 0.55});
  std::vector<Predicate> preds = {{1, t.sel(10, 1)}};
  auto oracle = OracleSkyline(t, preds, tf);
  ExecStats s1, s2;
  auto sig = engine.Signature(preds, tf, &io, &s1);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(AsSet(*sig), oracle);
  EXPECT_EQ(AsSet(engine.RankingFirst(preds, tf, &io, &s2)), oracle);
}

TEST(SkylineTest, ThreeDimensionalSkyline) {
  Table t = MakeData(2000, RankDistribution::kAntiCorrelated, 3);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineTransform tf = SkylineTransform::Static(3);
  auto oracle = OracleSkyline(t, {}, tf);
  ExecStats stats;
  auto res = engine.Signature({}, tf, &io, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(AsSet(*res), oracle);
}

TEST(SkylineTest, MultiPredicateConjunction) {
  Table t = MakeData(4000, RankDistribution::kUniform);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineTransform tf = SkylineTransform::Static(2);
  std::vector<Predicate> preds = {{0, t.sel(99, 0)}, {2, t.sel(99, 2)}};
  auto oracle = OracleSkyline(t, preds, tf);
  ExecStats stats;
  auto res = engine.Signature(preds, tf, &io, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(AsSet(*res), oracle);
  EXPECT_GT(stats.signature_pages, 0u);
}

TEST(SkylineTest, SignatureBeatsRankingOnIo) {
  Table t = MakeData(20000, RankDistribution::kUniform, 2, 43);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineTransform tf = SkylineTransform::Static(2);
  std::vector<Predicate> preds = {{0, t.sel(0, 0)}, {1, t.sel(0, 1)}};
  io.ResetStats();
  ExecStats s1;
  auto sig = engine.Signature(preds, tf, &io, &s1);
  ASSERT_TRUE(sig.ok());
  uint64_t sig_table_io = io.stats(IoCategory::kTable).physical;
  io.ResetStats();
  ExecStats s2;
  engine.RankingFirst(preds, tf, &io, &s2);
  uint64_t rank_table_io = io.stats(IoCategory::kTable).physical;
  // Ranking-first pays a random table access per skyline candidate;
  // signature pruning avoids (almost) all of them.
  EXPECT_LT(sig_table_io, rank_table_io);
}

TEST(SkylineSessionTest, DrillDownMatchesFreshQuery) {
  Table t = MakeData(3000, RankDistribution::kUniform);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineSession session(&engine);
  SkylineTransform tf = SkylineTransform::Static(2);

  std::vector<Predicate> base = {{0, t.sel(17, 0)}};
  ExecStats s0;
  auto first = session.Query(base, tf, &io, &s0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(AsSet(*first), OracleSkyline(t, base, tf));

  std::vector<Predicate> extra = {{1, t.sel(17, 1)}};
  ExecStats s1;
  auto drilled = session.DrillDown(extra, &io, &s1);
  ASSERT_TRUE(drilled.ok());
  std::vector<Predicate> both = base;
  both.push_back(extra[0]);
  EXPECT_EQ(AsSet(*drilled), OracleSkyline(t, both, tf));
}

TEST(SkylineSessionTest, RollUpMatchesFreshQuery) {
  Table t = MakeData(3000, RankDistribution::kUniform, 2, 47);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineSession session(&engine);
  SkylineTransform tf = SkylineTransform::Static(2);

  std::vector<Predicate> both = {{0, t.sel(23, 0)}, {1, t.sel(23, 1)}};
  ExecStats s0;
  auto first = session.Query(both, tf, &io, &s0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(AsSet(*first), OracleSkyline(t, both, tf));

  ExecStats s1;
  auto rolled = session.RollUp({1}, &io, &s1);
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(AsSet(*rolled),
            OracleSkyline(t, {{0, t.sel(23, 0)}}, tf));
}

TEST(SkylineSessionTest, DrillThenRollRoundTrip) {
  Table t = MakeData(2500, RankDistribution::kUniform, 2, 53);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineSession session(&engine);
  SkylineTransform tf = SkylineTransform::Static(2);

  std::vector<Predicate> base = {{0, t.sel(3, 0)}};
  ExecStats s;
  auto q0 = session.Query(base, tf, &io, &s);
  ASSERT_TRUE(q0.ok());
  auto q1 = session.DrillDown({{2, t.sel(3, 2)}}, &io, &s);
  ASSERT_TRUE(q1.ok());
  auto q2 = session.RollUp({2}, &io, &s);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(AsSet(*q2), OracleSkyline(t, base, tf));
}

TEST(SkylineSessionTest, DrillDownIsCheaperThanFresh) {
  Table t = MakeData(20000, RankDistribution::kUniform, 2, 59);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineTransform tf = SkylineTransform::Static(2);
  std::vector<Predicate> base = {{0, t.sel(100, 0)}};
  std::vector<Predicate> extra = {{1, t.sel(100, 1)}};
  std::vector<Predicate> both = base;
  both.push_back(extra[0]);

  SkylineSession session(&engine);
  ExecStats s0;
  ASSERT_TRUE(session.Query(base, tf, &io, &s0).ok());
  io.ResetStats();
  ExecStats sdrill;
  ASSERT_TRUE(session.DrillDown(extra, &io, &sdrill).ok());
  uint64_t drill_io = io.stats(IoCategory::kRTree).physical;

  io.ResetStats();
  SkylineSession fresh(&engine);
  ExecStats sfresh;
  ASSERT_TRUE(fresh.Query(both, tf, &io, &sfresh).ok());
  uint64_t fresh_io = io.stats(IoCategory::kRTree).physical;
  EXPECT_LE(drill_io, fresh_io);  // Fig 7.13's claim
}

TEST(TransformTest, LowerCornerBounds) {
  SkylineTransform tf = SkylineTransform::Dynamic({0.5, 0.5});
  Box box{{0.6, 0.8}, {0.1, 0.3}};
  std::vector<double> corner;
  tf.LowerCorner(box, &corner);
  EXPECT_NEAR(corner[0], 0.1, 1e-12);  // |0.6-0.5|
  EXPECT_NEAR(corner[1], 0.2, 1e-12);  // |0.3-0.5|
  EXPECT_NEAR(tf.MinDist(box), 0.3, 1e-12);
  // Box straddling the query point: zero distance.
  Box around{{0.4, 0.6}, {0.45, 0.55}};
  EXPECT_NEAR(tf.MinDist(around), 0.0, 1e-12);
}

}  // namespace
}  // namespace rankcube
