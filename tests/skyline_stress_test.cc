// Randomized drill-down / roll-up session sequences: after any sequence of
// operations, the session's skyline must equal a fresh query's skyline under
// the session's current predicate set.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "skyline/olap_session.h"

namespace rankcube {
namespace {

std::set<Tid> Oracle(const Table& t, const std::vector<Predicate>& preds,
                     const SkylineTransform& tf) {
  std::vector<Tid> qual;
  for (Tid i = 0; i < static_cast<Tid>(t.num_rows()); ++i) {
    bool ok = true;
    for (const auto& p : preds) {
      if (t.sel(i, p.dim) != p.value) ok = false;
    }
    if (ok) qual.push_back(i);
  }
  auto sky = SkylineOfTuples(t, qual, tf);
  return std::set<Tid>(sky.begin(), sky.end());
}

class SessionStressTest : public ::testing::TestWithParam<int> {};

TEST_P(SessionStressTest, RandomOpSequencesStayConsistent) {
  Rng rng(GetParam() * 7 + 3);
  SyntheticSpec spec;
  spec.num_rows = 2000;
  spec.num_sel_dims = 4;
  spec.cardinality = 3;
  spec.num_rank_dims = 2;
  spec.seed = GetParam();
  spec.distribution = static_cast<RankDistribution>(rng.UniformInt(3));
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(t, io);
  SkylineTransform tf = SkylineTransform::Static(2);
  SkylineSession session(&engine);

  Tid anchor = static_cast<Tid>(rng.UniformInt(t.num_rows()));
  ExecStats stats;
  auto r0 = session.Query({{0, t.sel(anchor, 0)}}, tf, &io, &stats);
  ASSERT_TRUE(r0.ok());

  for (int op = 0; op < 5; ++op) {
    const auto& preds = session.predicates();
    bool can_drill = preds.size() < 3;
    bool can_roll = preds.size() > 0;
    bool drill = can_drill && (!can_roll || rng.UniformInt(2) == 0);
    Result<std::vector<Tid>> res(std::vector<Tid>{});
    if (drill) {
      // Pick an unused dimension.
      int dim = -1;
      for (int d = 0; d < t.num_sel_dims(); ++d) {
        bool used = false;
        for (const auto& p : preds) used |= (p.dim == d);
        if (!used) {
          dim = d;
          break;
        }
      }
      ASSERT_GE(dim, 0);
      res = session.DrillDown({{dim, t.sel(anchor, dim)}}, &io, &stats);
    } else if (can_roll) {
      res = session.RollUp({preds.front().dim}, &io, &stats);
    } else {
      continue;
    }
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(std::set<Tid>(res->begin(), res->end()),
              Oracle(t, session.predicates(), tf))
        << "op " << op << (drill ? " drill" : " roll");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionStressTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace rankcube
