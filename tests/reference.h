// Brute-force oracles shared by correctness tests.
#ifndef RANKCUBE_TESTS_REFERENCE_H_
#define RANKCUBE_TESTS_REFERENCE_H_

#include <algorithm>
#include <vector>

#include "func/query.h"
#include "storage/table.h"

namespace rankcube {

/// Exact top-k by full evaluation; returns ascending scores.
inline std::vector<ScoredTuple> BruteForceTopK(const Table& table,
                                               const TopKQuery& query) {
  std::vector<ScoredTuple> all;
  std::vector<double> point(table.num_rank_dims());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
    bool ok = true;
    for (const auto& p : query.predicates) {
      if (table.sel(t, p.dim) != p.value) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (int d = 0; d < table.num_rank_dims(); ++d) point[d] = table.rank(t, d);
    double s = query.function->Evaluate(point.data());
    if (s < kInfScore) all.push_back({t, s});
  }
  std::sort(all.begin(), all.end());
  if (all.size() > static_cast<size_t>(query.k)) all.resize(query.k);
  return all;
}

/// Scores of a result list (tid ties at the k-boundary make tid comparison
/// unreliable; scores are the contract).
inline std::vector<double> ScoresOf(const std::vector<ScoredTuple>& v) {
  std::vector<double> s;
  s.reserve(v.size());
  for (const auto& e : v) s.push_back(e.score);
  return s;
}

}  // namespace rankcube

#endif  // RANKCUBE_TESTS_REFERENCE_H_
