// Brute-force oracles shared by correctness tests. BruteForceTopK itself
// lives in func/query.h (the rank-mapping engine needs it too).
#ifndef RANKCUBE_TESTS_REFERENCE_H_
#define RANKCUBE_TESTS_REFERENCE_H_

#include <vector>

#include "func/query.h"
#include "storage/table.h"

namespace rankcube {

/// Scores of a result list (tid ties at the k-boundary make tid comparison
/// unreliable; scores are the contract).
inline std::vector<double> ScoresOf(const std::vector<ScoredTuple>& v) {
  std::vector<double> s;
  s.reserve(v.size());
  for (const auto& e : v) s.push_back(e.score);
  return s;
}

}  // namespace rankcube

#endif  // RANKCUBE_TESTS_REFERENCE_H_
