#include <gtest/gtest.h>

#include <set>

#include "gen/synthetic.h"
#include "index/btree.h"
#include "index/composite.h"
#include "index/posting.h"
#include "index/rtree.h"

namespace rankcube {
namespace {

Table SmallTable(uint64_t rows = 2000, int rank_dims = 2, uint64_t seed = 11) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = 3;
  spec.cardinality = 5;
  spec.num_rank_dims = rank_dims;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TEST(BTreeTest, StructureInvariants) {
  Table t = SmallTable();
  PageStore store;
  IoSession io{&store};
  BTree bt(t, 0, io, {.fanout = 8});
  EXPECT_EQ(bt.fanout(), 8);
  EXPECT_GE(bt.depth(), 2);
  // Every tuple present exactly once across leaves, in sorted order.
  size_t count = 0;
  double prev = -1.0;
  std::set<Tid> seen;
  // Walk leaves left-to-right via recursive descent.
  std::vector<uint32_t> stack{bt.root()};
  std::vector<uint32_t> order;
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    const BTreeNode& n = bt.node(id);
    if (n.is_leaf) {
      order.push_back(id);
    } else {
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  for (uint32_t leaf : order) {
    const BTreeNode& n = bt.node(leaf);
    EXPECT_LE(n.fanout(), 8u);
    for (const auto& [v, tid] : n.entries) {
      EXPECT_GE(v, prev);
      prev = v;
      EXPECT_TRUE(seen.insert(tid).second);
      EXPECT_GE(v, n.range.lo);
      EXPECT_LE(v, n.range.hi);
      ++count;
    }
  }
  EXPECT_EQ(count, t.num_rows());
}

TEST(BTreeTest, NodeRangesNestInParents) {
  Table t = SmallTable();
  PageStore store;
  IoSession io{&store};
  BTree bt(t, 1, io, {.fanout = 16});
  std::vector<uint32_t> stack{bt.root()};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    const BTreeNode& n = bt.node(id);
    for (uint32_t c : n.children) {
      EXPECT_GE(bt.node(c).range.lo, n.range.lo - 1e-12);
      EXPECT_LE(bt.node(c).range.hi, n.range.hi + 1e-12);
      stack.push_back(c);
    }
  }
}

TEST(BTreeTest, PathsAddressNodes) {
  Table t = SmallTable(500);
  PageStore store;
  IoSession io{&store};
  BTree bt(t, 0, io, {.fanout = 4});
  // Resolve every node's path back down from the root.
  for (uint32_t id = 0; id < bt.num_nodes(); ++id) {
    std::vector<int> path = bt.NodePath(id);
    uint32_t walk = bt.root();
    for (int p : path) walk = bt.node(walk).children[p - 1];
    EXPECT_EQ(walk, id);
  }
}

TEST(BTreeTest, TuplePathsReachCorrectLeaf) {
  Table t = SmallTable(300);
  PageStore store;
  IoSession io{&store};
  BTree bt(t, 0, io, {.fanout = 4});
  auto paths = bt.TuplePaths();
  ASSERT_EQ(paths.size(), t.num_rows());
  for (Tid tid = 0; tid < 50; ++tid) {
    uint32_t walk = bt.root();
    for (int p : paths[tid]) walk = bt.node(walk).children[p - 1];
    const BTreeNode& leaf = bt.node(walk);
    ASSERT_TRUE(leaf.is_leaf);
    bool found = false;
    for (const auto& [v, id] : leaf.entries) found |= (id == tid);
    EXPECT_TRUE(found);
  }
}

void CheckRTreeInvariants(const RTree& rt, size_t expected_tuples) {
  std::set<Tid> seen;
  std::vector<uint32_t> stack{rt.root()};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    const RTreeNode& n = rt.node(id);
    EXPECT_LE(n.fanout(), static_cast<size_t>(rt.max_entries()));
    if (n.is_leaf) {
      for (const auto& e : n.entries) {
        EXPECT_TRUE(seen.insert(e.tid).second);
        EXPECT_TRUE(n.mbr.Contains(e.point))
            << "entry outside leaf MBR " << n.mbr.ToString();
      }
    } else {
      for (uint32_t c : n.children) {
        const Box& cb = rt.node(c).mbr;
        for (size_t d = 0; d < cb.dims(); ++d) {
          EXPECT_GE(cb[d].lo, n.mbr[d].lo - 1e-12);
          EXPECT_LE(cb[d].hi, n.mbr[d].hi + 1e-12);
        }
        stack.push_back(c);
      }
    }
  }
  EXPECT_EQ(seen.size(), expected_tuples);
}

TEST(RTreeTest, BulkLoadInvariants) {
  Table t = SmallTable(3000, 2);
  PageStore store;
  IoSession io{&store};
  RTree rt(2, io, {.max_entries = 16});
  rt.BulkLoadSTR(t);
  CheckRTreeInvariants(rt, t.num_rows());
  EXPECT_GE(rt.depth(), 2);
}

TEST(RTreeTest, InsertInvariants) {
  Table t = SmallTable(800, 3);
  PageStore store;
  IoSession io{&store};
  RTree rt(3, io, {.max_entries = 8});
  std::vector<double> point(t.num_rank_dims());
  for (Tid i = 0; i < t.num_rows(); ++i) {
    t.CopyRankRow(i, point.data());
    rt.Insert(i, point, /*track_updates=*/false);
  }
  CheckRTreeInvariants(rt, t.num_rows());
}

TEST(RTreeTest, TuplePathsResolve) {
  Table t = SmallTable(500, 2);
  PageStore store;
  IoSession io{&store};
  RTree rt(2, io, {.max_entries = 8});
  rt.BulkLoadSTR(t);
  auto paths = rt.AllTuplePaths();
  for (Tid tid = 0; tid < t.num_rows(); ++tid) {
    const auto& path = paths[tid];
    ASSERT_FALSE(path.empty());
    uint32_t walk = rt.root();
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      walk = rt.node(walk).children[path[i] - 1];
    }
    const RTreeNode& leaf = rt.node(walk);
    ASSERT_TRUE(leaf.is_leaf);
    EXPECT_EQ(leaf.entries[path.back() - 1].tid, tid);
    // TuplePath agrees with the bulk DFS.
    EXPECT_EQ(rt.TuplePath(tid), path);
  }
}

TEST(RTreeTest, InsertUpdateSetIsAccurate) {
  // Property: applying reported path updates to a shadow map must yield the
  // same paths as recomputing from scratch after every insert.
  Table t = SmallTable(400, 2, /*seed=*/31);
  PageStore store;
  IoSession io{&store};
  RTree rt(2, io, {.max_entries = 4});  // tiny fanout: many splits
  std::vector<std::vector<int>> shadow;
  std::vector<double> point(t.num_rank_dims());
  for (Tid i = 0; i < t.num_rows(); ++i) {
    t.CopyRankRow(i, point.data());
    auto updates = rt.Insert(i, point);
    shadow.resize(std::max(shadow.size(), static_cast<size_t>(i) + 1));
    for (const auto& u : updates) {
      if (u.tid >= shadow.size()) shadow.resize(u.tid + 1);
      if (!u.old_path.empty()) {
        EXPECT_EQ(shadow[u.tid], u.old_path) << "tid " << u.tid;
      }
      shadow[u.tid] = u.new_path;
    }
    if (i % 97 == 0) {
      auto actual = rt.AllTuplePaths();
      for (Tid j = 0; j <= i; ++j) {
        ASSERT_EQ(shadow[j], actual[j]) << "after insert " << i << " tid " << j;
      }
    }
  }
  auto actual = rt.AllTuplePaths();
  for (Tid j = 0; j < t.num_rows(); ++j) EXPECT_EQ(shadow[j], actual[j]);
}

TEST(RTreeTest, FanoutDerivedFromPageSize) {
  PageStore store;
  IoSession io{&store};
  RTree r2(2, io);
  RTree r5(5, io);
  EXPECT_EQ(r2.max_entries(), 204);  // §4.2.2's published figure
  EXPECT_EQ(r5.max_entries(), 93);
}

TEST(PostingTest, ListsAreCompleteAndSorted) {
  Table t = SmallTable(1000);
  PostingIndex idx(t);
  size_t total = 0;
  for (int32_t v = 0; v < 5; ++v) {
    const auto& list = idx.Lookup(0, v);
    total += list.size();
    for (size_t i = 1; i < list.size(); ++i) EXPECT_LT(list[i - 1], list[i]);
    for (Tid tid : list) EXPECT_EQ(t.sel(tid, 0), v);
  }
  EXPECT_EQ(total, t.num_rows());
  EXPECT_TRUE(idx.Lookup(0, 99).empty());
  EXPECT_TRUE(idx.Lookup(9, 0).empty());
}

TEST(CompositeTest, PrefixMatchFollowsIndexOrder) {
  Table t = SmallTable(100);
  CompositeIndex idx(t, {2, 0, 1});
  EXPECT_EQ(idx.PrefixMatch({{2, 1}}), 1);
  EXPECT_EQ(idx.PrefixMatch({{0, 1}}), 0);          // not a prefix
  EXPECT_EQ(idx.PrefixMatch({{0, 1}, {2, 3}}), 2);  // dims {2,0} covered
}

TEST(CompositeTest, RangeQueryFindsExactlyMatchingTuples) {
  Table t = SmallTable(2000);
  CompositeIndex idx(t, {0, 1, 2});
  PageStore store;
  IoSession io{&store};
  std::vector<Predicate> preds{{0, 2}, {1, 3}};
  Box box = Box::Unit(2);
  box[0].hi = 0.5;
  auto res = idx.RangeQuery(preds, box, &io);
  std::set<Tid> expect;
  for (Tid i = 0; i < t.num_rows(); ++i) {
    if (t.sel(i, 0) == 2 && t.sel(i, 1) == 3 && t.rank(i, 0) <= 0.5) {
      expect.insert(i);
    }
  }
  EXPECT_EQ(std::set<Tid>(res.candidates.begin(), res.candidates.end()),
            expect);
  EXPECT_GT(io.stats(IoCategory::kComposite).physical, 0u);
  // The scan touched at least the matching region.
  EXPECT_GE(res.scanned, expect.size());
}

}  // namespace
}  // namespace rankcube
