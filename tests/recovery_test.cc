// Crash-recovery acceptance suite for the durability layer (PR: WAL +
// checkpoints + fault injection).
//
// The centerpiece is a kill-point sweep: a deterministic mutation script
// runs against a durable RankCubeDb on a FaultFs whose op budget is swept
// over every filesystem mutation the workload performs. After each
// simulated power cut the db is reopened and compared — tuple-identically,
// over a panel of queries — to an in-memory oracle holding exactly the
// epoch-prefix of the script the recovery reports. Under fsync=always the
// sweep also proves the headline guarantee: no acknowledged write is ever
// lost.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "engine/query_builder.h"
#include "planner/rank_cube_db.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/durability.h"
#include "storage/fault_fs.h"
#include "storage/file_page_store.h"
#include "storage/fs.h"
#include "storage/manifest.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace rankcube {
namespace {

// ---------------------------------------------------------------------------
// CRC-32C

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32C check value ("123456789" -> 0xE3069283).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_NE(StoredCrc32c(""), 0u);  // 0 is reserved as "unset"
}

TEST(Crc32Test, SeedChaining) {
  uint32_t whole = Crc32c("hello world", 11);
  uint32_t part = Crc32c("hello ", 6);
  EXPECT_EQ(Crc32c("world", 5, part), whole);
}

// ---------------------------------------------------------------------------
// FaultFs power-loss semantics

TEST(FaultFsTest, CrashRevertsToSyncedWatermark) {
  FaultFs fs;
  auto file = fs.NewWritableFile("/d/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("durable").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  ASSERT_TRUE(file.value()->Append("lost-on-crash").ok());
  EXPECT_EQ(fs.ReadFileToString("/d/f").value(), "durablelost-on-crash");

  fs.Crash();
  EXPECT_EQ(fs.ReadFileToString("/d/f").value(), "durable");
}

TEST(FaultFsTest, TornTailSurvivesCrash) {
  FaultFs fs;
  FaultPlan plan;
  plan.torn_tail_bytes = 3;
  auto file = fs.NewWritableFile("/d/f", true);
  ASSERT_TRUE(file.value()->Append("base").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  fs.SetPlan(plan);
  ASSERT_TRUE(file.value()->Append("unsynced").ok());
  fs.Crash();
  EXPECT_EQ(fs.ReadFileToString("/d/f").value(), "baseuns");
}

TEST(FaultFsTest, CrashAfterOpsLatchesEveryLaterMutation) {
  FaultFs fs;
  auto file = fs.NewWritableFile("/d/f", true);
  FaultPlan plan;
  plan.crash_after_ops = 2;
  fs.SetPlan(plan);
  EXPECT_TRUE(file.value()->Append("a").ok());   // op 0
  EXPECT_TRUE(file.value()->Sync().ok());        // op 1
  EXPECT_FALSE(file.value()->Append("b").ok());  // op 2: kill point
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(file.value()->Sync().ok());  // latched
  EXPECT_FALSE(fs.NewWritableFile("/d/g", true).ok());
}

TEST(FaultFsTest, ShortWritePersistsHalf) {
  FaultFs fs;
  auto file = fs.NewWritableFile("/d/f", true);
  FaultPlan plan;
  plan.short_write_at = 0;
  fs.SetPlan(plan);
  EXPECT_FALSE(file.value()->Append("12345678").ok());
  EXPECT_TRUE(fs.crashed());
  // The torn write left half the bytes in the cache view...
  EXPECT_EQ(fs.ReadFileToString("/d/f").value(), "1234");
  fs.Crash();
  // ...and nothing was ever synced, so the crash erases even those.
  EXPECT_EQ(fs.ReadFileToString("/d/f").value(), "");
}

TEST(FaultFsTest, FailSyncDoesNotAdvanceWatermark) {
  FaultFs fs;
  auto file = fs.NewWritableFile("/d/f", true);
  FaultPlan plan;
  plan.fail_sync_at = 1;
  fs.SetPlan(plan);
  ASSERT_TRUE(file.value()->Append("data").ok());  // op 0
  EXPECT_FALSE(file.value()->Sync().ok());         // op 1: EIO
  EXPECT_FALSE(fs.crashed());                      // not a kill point
  fs.Crash();
  EXPECT_EQ(fs.ReadFileToString("/d/f").value(), "");
}

TEST(FaultFsTest, RenameIsAtomicAndHandlesSurvive) {
  FaultFs fs;
  auto file = fs.NewWritableFile("/d/tmp", true);
  ASSERT_TRUE(file.value()->Append("v2").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  auto old = fs.NewWritableFile("/d/final", true);
  ASSERT_TRUE(old.value()->Append("v1").ok());
  ASSERT_TRUE(old.value()->Sync().ok());
  ASSERT_TRUE(fs.RenameFile("/d/tmp", "/d/final").ok());
  EXPECT_EQ(fs.ReadFileToString("/d/final").value(), "v2");
  EXPECT_FALSE(fs.FileExists("/d/tmp").value());
  // The old handle still appends to the state it was opened on (POSIX fd
  // semantics), not to the renamed-over path's new content.
  ASSERT_TRUE(old.value()->Append("x").ok());
  EXPECT_EQ(fs.ReadFileToString("/d/final").value(), "v2");
}

TEST(FaultFsTest, ListDirIsShallow) {
  FaultFs fs;
  (void)fs.NewWritableFile("/d/a", true);
  (void)fs.NewWritableFile("/d/b", true);
  (void)fs.NewWritableFile("/d/sub/c", true);
  (void)fs.NewWritableFile("/other/x", true);
  auto names = fs.ListDir("/d");
  ASSERT_TRUE(names.ok());
  std::vector<std::string> sorted = names.value();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------------------
// WAL

WalWriter::Options AlwaysSync() {
  return {FsyncPolicy::kAlways, 1 << 16};
}

TEST(WalTest, RoundTrip) {
  FaultFs fs;
  auto wal = WalWriter::Create(&fs, "/d/wal", 7, AlwaysSync());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->AppendInsert(8, {1, 2}, {0.5, 0.25}).ok());
  ASSERT_TRUE(wal.value()->AppendDelete(9, 3).ok());

  auto read = ReadWal(&fs, "/d/wal");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().start_epoch, 7u);
  EXPECT_FALSE(read.value().torn_tail);
  EXPECT_FALSE(read.value().mid_corruption);
  ASSERT_EQ(read.value().records.size(), 2u);
  const WalRecord& ins = read.value().records[0];
  EXPECT_EQ(ins.kind, DeltaStore::MutationKind::kInsert);
  EXPECT_EQ(ins.seq, 8u);
  EXPECT_EQ(ins.sel, (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(ins.rank, (std::vector<double>{0.5, 0.25}));
  const WalRecord& del = read.value().records[1];
  EXPECT_EQ(del.kind, DeltaStore::MutationKind::kDelete);
  EXPECT_EQ(del.seq, 9u);
  EXPECT_EQ(del.tid, 3u);
}

TEST(WalTest, TornTailEndsTheLogRecoverably) {
  FaultFs fs;
  auto wal = WalWriter::Create(&fs, "/d/wal", 0, AlwaysSync());
  ASSERT_TRUE(wal.value()->AppendInsert(1, {1}, {0.5}).ok());
  uint64_t good_bytes = wal.value()->bytes();
  ASSERT_TRUE(wal.value()->AppendInsert(2, {2}, {0.75}).ok());
  // Tear the last record in half.
  uint64_t full = fs.FileSize("/d/wal").value();
  ASSERT_TRUE(fs.TruncateFile("/d/wal", full - 5).ok());

  auto read = ReadWal(&fs, "/d/wal");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().torn_tail);
  EXPECT_FALSE(read.value().mid_corruption);
  EXPECT_EQ(read.value().records.size(), 1u);
  EXPECT_EQ(read.value().valid_bytes, good_bytes);
}

TEST(WalTest, MidLogCorruptionIsNotATornTail) {
  FaultFs fs;
  auto wal = WalWriter::Create(&fs, "/d/wal", 0, AlwaysSync());
  ASSERT_TRUE(wal.value()->AppendInsert(1, {1}, {0.5}).ok());
  uint64_t first_end = wal.value()->bytes();
  ASSERT_TRUE(wal.value()->AppendInsert(2, {2}, {0.75}).ok());
  ASSERT_TRUE(wal.value()->AppendInsert(3, {3}, {0.25}).ok());
  // Flip a byte inside record 2's body: record 3 still parses beyond it.
  ASSERT_TRUE(fs.CorruptByte("/d/wal", first_end + 12).ok());

  auto read = ReadWal(&fs, "/d/wal");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().mid_corruption);
  EXPECT_FALSE(read.value().torn_tail);
  EXPECT_EQ(read.value().records.size(), 1u);  // the prefix before the hole
}

TEST(WalTest, HeaderCorruptionFailsTheRead) {
  FaultFs fs;
  auto wal = WalWriter::Create(&fs, "/d/wal", 0, AlwaysSync());
  ASSERT_TRUE(wal.value()->AppendInsert(1, {1}, {0.5}).ok());
  ASSERT_TRUE(fs.CorruptByte("/d/wal", 6).ok());
  auto read = ReadWal(&fs, "/d/wal");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kCorruption);
}

// ---------------------------------------------------------------------------
// Checkpoint paged file

TEST(FilePageStoreTest, BlobRoundTripAcrossPages) {
  FaultFs fs;
  std::string blob;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    blob += static_cast<char>(rng.UniformInt(256));
  }
  ASSERT_TRUE(
      FilePageStore::WriteBlobFile(&fs, "/d/ckpt", blob, 128, 42).ok());
  auto store = FilePageStore::Open(&fs, "/d/ckpt");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->epoch(), 42u);
  EXPECT_EQ(store.value()->payload_bytes(), blob.size());
  EXPECT_GT(store.value()->num_data_pages(), 1u);
  auto round = store.value()->ReadBlob();
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), blob);
}

TEST(FilePageStoreTest, PageCorruptionIsDetectedAndNamed) {
  FaultFs fs;
  std::string blob(500, 'x');
  ASSERT_TRUE(
      FilePageStore::WriteBlobFile(&fs, "/d/ckpt", blob, 128, 1).ok());
  // Damage a byte inside data page 2 (pages are 128 bytes; page 0 header).
  ASSERT_TRUE(fs.CorruptByte("/d/ckpt", 2 * 128 + 40).ok());
  auto store = FilePageStore::Open(&fs, "/d/ckpt");
  ASSERT_TRUE(store.ok());  // header is fine
  std::string payload;
  Status s = store.value()->ReadPage(2, &payload);
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
  EXPECT_NE(s.message().find("page 2"), std::string::npos);
  EXPECT_TRUE(store.value()->ReadPage(1, &payload).ok());  // others fine
  EXPECT_FALSE(store.value()->ReadBlob().ok());
}

TEST(FilePageStoreTest, HeaderCorruptionFailsOpen) {
  FaultFs fs;
  ASSERT_TRUE(
      FilePageStore::WriteBlobFile(&fs, "/d/ckpt", "data", 128, 1).ok());
  ASSERT_TRUE(fs.CorruptByte("/d/ckpt", 9).ok());
  auto store = FilePageStore::Open(&fs, "/d/ckpt");
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), Status::Code::kCorruption);
}

TEST(FilePageStoreTest, TruncatedFileFailsOpen) {
  FaultFs fs;
  std::string blob(500, 'y');
  ASSERT_TRUE(
      FilePageStore::WriteBlobFile(&fs, "/d/ckpt", blob, 128, 1).ok());
  uint64_t size = fs.FileSize("/d/ckpt").value();
  ASSERT_TRUE(fs.TruncateFile("/d/ckpt", size - 100).ok());
  EXPECT_EQ(FilePageStore::Open(&fs, "/d/ckpt").status().code(),
            Status::Code::kCorruption);
}

// ---------------------------------------------------------------------------
// Manifest

TEST(ManifestTest, RoundTripAndNames) {
  FaultFs fs;
  ASSERT_TRUE(fs.CreateDir("/d").ok());
  Manifest m;
  m.checkpoint_file = CheckpointFileName(42);
  m.epoch = 42;
  m.wal_file = WalFileName(42);
  ASSERT_TRUE(StoreManifest(&fs, "/d", m).ok());
  auto loaded = LoadManifest(&fs, "/d");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().checkpoint_file, m.checkpoint_file);
  EXPECT_EQ(loaded.value().epoch, 42u);
  EXPECT_EQ(loaded.value().wal_file, m.wal_file);
  EXPECT_TRUE(IsCheckpointFileName(m.checkpoint_file));
  EXPECT_TRUE(IsWalFileName(m.wal_file));
  EXPECT_FALSE(IsCheckpointFileName("MANIFEST"));
}

TEST(ManifestTest, MissingIsNotFoundCorruptIsCorruption) {
  FaultFs fs;
  EXPECT_EQ(LoadManifest(&fs, "/d").status().code(), Status::Code::kNotFound);
  Manifest m;
  m.checkpoint_file = CheckpointFileName(1);
  m.epoch = 1;
  m.wal_file = WalFileName(1);
  ASSERT_TRUE(StoreManifest(&fs, "/d", m).ok());
  ASSERT_TRUE(fs.CorruptByte(JoinPath("/d", ManifestFileName()), 30).ok());
  EXPECT_EQ(LoadManifest(&fs, "/d").status().code(),
            Status::Code::kCorruption);
}

// ---------------------------------------------------------------------------
// Snapshot codec

Table MakeSeedTable(int rows) {
  TableSchema schema;
  schema.sel_cardinality = {4, 3};
  schema.num_rank_dims = 2;
  Table table(schema);
  Rng rng(11);
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(table
                    .AddRow({static_cast<int32_t>(rng.UniformInt(4)),
                             static_cast<int32_t>(rng.UniformInt(3))},
                            {rng.Uniform01(), rng.Uniform01()})
                    .ok());
  }
  return table;
}

TEST(SnapshotTest, RoundTripWithTombstonesAndEpoch) {
  Table table = MakeSeedTable(50);
  ASSERT_TRUE(table.Insert({1, 1}, {0.5, 0.5}).ok());
  ASSERT_TRUE(table.Delete(3).ok());
  ASSERT_TRUE(table.Delete(17).ok());
  const uint64_t epoch = table.epoch();

  auto round = DecodeTableSnapshot(EncodeTableSnapshot(table));
  ASSERT_TRUE(round.ok());
  const Table& t = round.value();
  EXPECT_EQ(t.num_rows(), table.num_rows());
  EXPECT_EQ(t.num_live(), table.num_live());
  EXPECT_EQ(t.epoch(), epoch);
  EXPECT_EQ(t.delta().compacted_epoch(), epoch);  // log restored empty
  EXPECT_TRUE(t.delta().empty());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    Tid tid = static_cast<Tid>(r);
    EXPECT_EQ(t.is_live(tid), table.is_live(tid));
    for (int d = 0; d < 2; ++d) {
      EXPECT_EQ(t.sel(tid, d), table.sel(tid, d));
      EXPECT_EQ(t.rank(tid, d), table.rank(tid, d));
    }
  }
}

TEST(SnapshotTest, GarbageIsRejected) {
  EXPECT_FALSE(DecodeTableSnapshot("not a snapshot").ok());
  std::string blob = EncodeTableSnapshot(MakeSeedTable(5));
  blob.resize(blob.size() - 3);  // structural size mismatch
  EXPECT_FALSE(DecodeTableSnapshot(blob).ok());
}

// ---------------------------------------------------------------------------
// DurabilityManager + RankCubeDb recovery

RankCubeDb::Options DurableOptions(FaultFs* fs, FsyncPolicy fsync) {
  RankCubeDb::Options options;
  options.engines = {"table_scan", "grid"};
  options.durability.data_dir = "/data";
  options.durability.fsync = fsync;
  options.durability.page_size = 256;
  options.durability.fs = fs;
  return options;
}

/// The deterministic mutation script the sweep + oracle share.
struct Mutation {
  bool is_insert;
  std::vector<int32_t> sel;  ///< insert
  std::vector<double> rank;  ///< insert
  Tid tid = 0;               ///< delete
};

std::vector<Mutation> MakeScript(int inserts, int seed_rows) {
  std::vector<Mutation> script;
  Rng rng(23);
  int born = 0;
  for (int i = 0; i < inserts; ++i) {
    script.push_back({true,
                      {static_cast<int32_t>(rng.UniformInt(4)),
                       static_cast<int32_t>(rng.UniformInt(3))},
                      {rng.Uniform01(), rng.Uniform01()},
                      0});
    ++born;
    if (i % 3 == 2) {
      // Delete something that certainly exists and is live: the row born
      // two inserts ago (never deleted before — the stride guarantees it).
      script.push_back(
          {false, {}, {}, static_cast<Tid>(seed_rows + born - 2)});
    }
  }
  return script;
}

/// Applies the first `epoch` mutations of `script` to a fresh copy of the
/// seed — the state a correct recovery at that epoch must equal.
Table OracleTable(const std::vector<Mutation>& script, uint64_t epoch) {
  Table table = MakeSeedTable(40);
  for (uint64_t i = 0; i < epoch; ++i) {
    const Mutation& m = script[i];
    if (m.is_insert) {
      EXPECT_TRUE(table.Insert(m.sel, m.rank).ok());
    } else {
      EXPECT_TRUE(table.Delete(m.tid).ok());
    }
  }
  return table;
}

std::vector<TopKQuery> QueryPanel() {
  return {
      QueryBuilder().OrderByLinear({1.0, 2.0}).Limit(10).Build(),
      QueryBuilder().Where(0, 2).OrderByLinear({1.0, 1.0}).Limit(8).Build(),
      QueryBuilder()
          .Where(0, 1)
          .Where(1, 2)
          .OrderByLinear({2.0, 0.5})
          .Limit(5)
          .Build(),
  };
}

/// Both dbs must answer every panel query with identical tuples.
void ExpectQueryParity(RankCubeDb* recovered, RankCubeDb* oracle) {
  for (const TopKQuery& q : QueryPanel()) {
    auto got = recovered->Query(q);
    auto want = oracle->Query(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(got.value().tuples.size(), want.value().tuples.size());
    for (size_t i = 0; i < want.value().tuples.size(); ++i) {
      EXPECT_EQ(got.value().tuples[i].tid, want.value().tuples[i].tid);
      EXPECT_EQ(got.value().tuples[i].score, want.value().tuples[i].score);
    }
  }
}

TEST(DurabilityTest, FreshCreateThenCleanRecover) {
  FaultFs fs;
  auto db = RankCubeDb::Open(MakeSeedTable(40),
                             DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(db.value()->recovery().created);
  EXPECT_FALSE(db.value()->read_only());

  ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
  ASSERT_TRUE(db.value()->Insert({2, 2}, {0.25, 0.75}).ok());
  ASSERT_TRUE(db.value()->Delete(5).ok());
  db.value().reset();  // process "dies" without checkpointing

  auto again = RankCubeDb::Open(MakeSeedTable(40),
                                DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again.value()->recovery().recovered);
  EXPECT_EQ(again.value()->recovery().replayed, 3u);
  EXPECT_FALSE(again.value()->read_only());
  EXPECT_EQ(again.value()->table().epoch(), 3u);
  EXPECT_EQ(again.value()->table().num_rows(), 42u);
  EXPECT_FALSE(again.value()->table().is_live(5));
}

TEST(DurabilityTest, KillPointSweepNeverLosesAckedWritesUnderFsyncAlways) {
  // Dry run: count the filesystem mutation ops the full script performs.
  const std::vector<Mutation> script = MakeScript(18, 40);
  int64_t total_ops = 0;
  {
    FaultFs fs;
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(db.ok());
    fs.SetPlan(FaultPlan{});  // reset the op counter after open
    for (const Mutation& m : script) {
      if (m.is_insert) {
        ASSERT_TRUE(db.value()->Insert(m.sel, m.rank).ok());
      } else {
        ASSERT_TRUE(db.value()->Delete(m.tid).ok());
      }
    }
    total_ops = fs.ops();
  }
  ASSERT_GT(total_ops, 0);

  // Sweep: kill at every op between two mutations (and inside them).
  for (int64_t kill = 0; kill < total_ops; ++kill) {
    FaultFs fs;
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(db.ok());
    FaultPlan plan;
    plan.crash_after_ops = kill;
    fs.SetPlan(plan);

    uint64_t acked = 0;
    for (const Mutation& m : script) {
      Status s = m.is_insert
                     ? db.value()->Insert(m.sel, m.rank).status()
                     : db.value()->Delete(m.tid);
      if (!s.ok()) break;  // the kill point fired mid-workload
      ++acked;
    }
    db.value().reset();
    fs.Crash();  // power cut + reboot

    auto recovered = RankCubeDb::Open(
        MakeSeedTable(40), DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(recovered.ok())
        << "kill=" << kill << ": " << recovered.status().ToString();
    EXPECT_FALSE(recovered.value()->read_only()) << "kill=" << kill;
    const uint64_t epoch = recovered.value()->table().epoch();
    // The headline guarantee: every acknowledged write survived; and the
    // db never invents mutations that were not issued.
    EXPECT_GE(epoch, acked) << "kill=" << kill;
    EXPECT_LE(epoch, script.size()) << "kill=" << kill;

    // Tuple-identical to the epoch-prefix oracle.
    RankCubeDb::Options ephemeral;
    ephemeral.engines = {"table_scan", "grid"};
    RankCubeDb oracle(OracleTable(script, epoch), ephemeral);
    ExpectQueryParity(recovered.value().get(), &oracle);
  }
}

TEST(DurabilityTest, FsyncOffLosesOnlyUnsyncedSuffix) {
  FaultFs fs;
  const std::vector<Mutation> script = MakeScript(12, 40);
  {
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kOff));
    ASSERT_TRUE(db.ok());
    for (const Mutation& m : script) {
      if (m.is_insert) {
        ASSERT_TRUE(db.value()->Insert(m.sel, m.rank).ok());
      } else {
        ASSERT_TRUE(db.value()->Delete(m.tid).ok());
      }
    }
  }
  fs.Crash();
  auto recovered = RankCubeDb::Open(MakeSeedTable(40),
                                    DurableOptions(&fs, FsyncPolicy::kOff));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // With fsync=off every unsynced record may vanish — but what remains must
  // be a consistent prefix, never garbage.
  const uint64_t epoch = recovered.value()->table().epoch();
  EXPECT_LE(epoch, script.size());
  RankCubeDb::Options ephemeral;
  ephemeral.engines = {"table_scan", "grid"};
  RankCubeDb oracle(OracleTable(script, epoch), ephemeral);
  ExpectQueryParity(recovered.value().get(), &oracle);
}

TEST(DurabilityTest, FsyncFailureLatchesReadOnlyWithoutDiverging) {
  FaultFs fs;
  auto db = RankCubeDb::Open(MakeSeedTable(40),
                             DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
  const uint64_t epoch_before = db.value()->table().epoch();

  FaultPlan plan;
  plan.fail_sync_at = 1;  // the Insert's Sync (op 0 is its Append)
  fs.SetPlan(plan);
  auto failed = db.value()->Insert({2, 2}, {0.25, 0.25});
  ASSERT_FALSE(failed.ok());

  // The failed write was never applied; the db is latched read-only with a
  // typed reason, but keeps answering queries at the consistent state.
  EXPECT_EQ(db.value()->table().epoch(), epoch_before);
  EXPECT_TRUE(db.value()->read_only());
  DbStats stats = db.value()->Stats();
  EXPECT_TRUE(stats.read_only);
  EXPECT_NE(stats.degraded_reason.find("wal append failed"),
            std::string::npos);
  auto rejected = db.value()->Insert({3, 1}, {0.5, 0.5});
  EXPECT_EQ(rejected.status().code(), Status::Code::kNotSupported);
  EXPECT_EQ(db.value()->Delete(0).code(), Status::Code::kNotSupported);
  EXPECT_TRUE(
      db.value()->Query(QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(5).Build())
          .ok());
}

TEST(DurabilityTest, MidWalCorruptionDegradesToReadOnlyAtLastGoodState) {
  FaultFs fs;
  uint64_t second_record_offset = 0;
  {
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
    second_record_offset =
        fs.FileSize(JoinPath("/data", WalFileName(0))).value();
    ASSERT_TRUE(db.value()->Insert({2, 2}, {0.25, 0.75}).ok());
    ASSERT_TRUE(db.value()->Insert({3, 0}, {0.75, 0.25}).ok());
  }
  // Rot record 2 (records 3 still parses beyond it => mid-log corruption).
  ASSERT_TRUE(fs.CorruptByte(JoinPath("/data", WalFileName(0)),
                             second_record_offset + 10)
                  .ok());
  auto db = RankCubeDb::Open(MakeSeedTable(40),
                             DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(db.value()->read_only());
  EXPECT_EQ(db.value()->table().epoch(), 1u);  // the salvageable prefix
  DbStats stats = db.value()->Stats();
  EXPECT_TRUE(stats.read_only);
  EXPECT_FALSE(stats.degraded_reason.empty());
  EXPECT_EQ(db.value()->Insert({1, 1}, {0.5, 0.5}).status().code(),
            Status::Code::kNotSupported);
}

TEST(DurabilityTest, CheckpointRotatesWalAndSurvivesRestart) {
  FaultFs fs;
  {
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
    ASSERT_TRUE(db.value()->Insert({2, 2}, {0.25, 0.75}).ok());
    ASSERT_TRUE(db.value()->Checkpoint().ok());
    EXPECT_EQ(db.value()->Stats().checkpoint_epoch, 2u);
    EXPECT_EQ(db.value()->Stats().wal_records, 0u);  // rotated
    // Mutations after the checkpoint land in the new WAL.
    ASSERT_TRUE(db.value()->Insert({3, 0}, {0.75, 0.25}).ok());
  }
  auto db = RankCubeDb::Open(MakeSeedTable(40),
                             DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->recovery().checkpoint_epoch, 2u);
  EXPECT_EQ(db.value()->recovery().replayed, 1u);
  EXPECT_EQ(db.value()->table().epoch(), 3u);
  EXPECT_EQ(db.value()->table().num_rows(), 43u);
}

TEST(DurabilityTest, CompactCheckpointsAndRecoveryReplaysNothing) {
  FaultFs fs;
  {
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
    ASSERT_TRUE(db.value()->Delete(2).ok());
    auto report = db.value()->Compact();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  auto db = RankCubeDb::Open(MakeSeedTable(40),
                             DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->recovery().replayed, 0u);
  EXPECT_EQ(db.value()->recovery().checkpoint_epoch, 2u);
  EXPECT_EQ(db.value()->table().epoch(), 2u);
  EXPECT_FALSE(db.value()->table().is_live(2));
}

TEST(DurabilityTest, CrashDuringCheckpointRecoversFromOldOrNewState) {
  // Sweep kill points through Checkpoint(): at every op the manifest must
  // resolve to EITHER the old checkpoint + full WAL or the new checkpoint —
  // both reconstruct the same table.
  int64_t checkpoint_ops = 0;
  {
    FaultFs fs;
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
    fs.SetPlan(FaultPlan{});
    ASSERT_TRUE(db.value()->Checkpoint().ok());
    checkpoint_ops = fs.ops();
  }
  for (int64_t kill = 0; kill < checkpoint_ops; ++kill) {
    FaultFs fs;
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
    FaultPlan plan;
    plan.crash_after_ops = kill;
    fs.SetPlan(plan);
    Status s = db.value()->Checkpoint();  // may die at the kill point
    (void)s;
    db.value().reset();
    fs.Crash();

    auto recovered = RankCubeDb::Open(
        MakeSeedTable(40), DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(recovered.ok())
        << "kill=" << kill << ": " << recovered.status().ToString();
    EXPECT_FALSE(recovered.value()->read_only()) << "kill=" << kill;
    EXPECT_EQ(recovered.value()->table().epoch(), 1u) << "kill=" << kill;
    EXPECT_EQ(recovered.value()->table().num_rows(), 41u) << "kill=" << kill;
  }
}

TEST(DurabilityTest, ReplayIsIdempotentOverDuplicateRecords) {
  // Apply the same WAL records to a table twice: the second pass must be a
  // clean no-op (seq <= epoch), leaving the table bit-identical.
  FaultFs fs;
  auto wal = WalWriter::Create(&fs, "/d/wal", 0, AlwaysSync());
  ASSERT_TRUE(wal.value()->AppendInsert(1, {1, 1}, {0.5, 0.5}).ok());
  ASSERT_TRUE(wal.value()->AppendInsert(2, {2, 2}, {0.25, 0.75}).ok());
  ASSERT_TRUE(wal.value()->AppendDelete(3, 40).ok());
  auto read = ReadWal(&fs, "/d/wal");
  ASSERT_TRUE(read.ok());

  Table table = MakeSeedTable(40);
  for (const WalRecord& rec : read.value().records) {
    auto applied = ApplyWalRecord(&table, rec);
    ASSERT_TRUE(applied.ok());
    EXPECT_TRUE(applied.value());
  }
  EXPECT_EQ(table.epoch(), 3u);
  const size_t rows = table.num_rows();
  const size_t live = table.num_live();
  for (const WalRecord& rec : read.value().records) {
    auto applied = ApplyWalRecord(&table, rec);
    ASSERT_TRUE(applied.ok());
    EXPECT_FALSE(applied.value()) << "duplicate must be skipped";
  }
  EXPECT_EQ(table.epoch(), 3u);
  EXPECT_EQ(table.num_rows(), rows);
  EXPECT_EQ(table.num_live(), live);

  auto gap = ApplyWalRecord(
      &table, WalRecord{DeltaStore::MutationKind::kDelete, 9, {}, {}, 0});
  EXPECT_EQ(gap.status().code(), Status::Code::kCorruption);
}

TEST(DurabilityTest, ValidationFailureLeavesNoPartialStateAnywhere) {
  FaultFs fs;
  auto db = RankCubeDb::Open(MakeSeedTable(40),
                             DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
  const uint64_t epoch = db.value()->table().epoch();
  const uint64_t wal_records = db.value()->Stats().wal_records;

  // Each rejected write must touch neither the table nor the WAL — a
  // logged-but-unapplied record would resurrect the bad row at recovery.
  EXPECT_FALSE(db.value()->Insert({99, 0}, {0.5, 0.5}).ok());   // domain
  EXPECT_FALSE(db.value()->Insert({1, 1}, {1.5, 0.5}).ok());    // range
  EXPECT_FALSE(db.value()->Insert({1}, {0.5, 0.5}).ok());       // arity
  EXPECT_FALSE(db.value()->Delete(9999).ok());                  // no such tid
  EXPECT_EQ(db.value()->table().epoch(), epoch);
  EXPECT_EQ(db.value()->Stats().wal_records, wal_records);
  EXPECT_FALSE(db.value()->read_only());  // rejections are not failures

  db.value().reset();
  auto again = RankCubeDb::Open(MakeSeedTable(40),
                                DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->table().epoch(), epoch);
}

TEST(DurabilityTest, BackingReadsVerifyCheckpointPagesAndLatchCorruption) {
  FaultFs fs;
  RankCubeDb::Options options = DurableOptions(&fs, FsyncPolicy::kAlways);
  // ranking_first does a random heap fetch per candidate — exactly the
  // single-page kTable misses the checkpoint backing serves. Tiny cache so
  // the misses reach the device.
  options.engines = {"table_scan", "ranking_first"};
  options.store.cache_pages = 4;
  auto db = RankCubeDb::Open(MakeSeedTable(200), options);
  ASSERT_TRUE(db.ok());
  auto q = QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(10).Build();
  QueryOptions force;
  force.force_engine = "ranking_first";
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.value()->Query(q, force).ok());
  }
  DbStats stats = db.value()->Stats();
  EXPECT_GT(stats.backing_reads, 0u);       // preads happened and verified
  EXPECT_EQ(stats.backing_corruptions, 0u);

  // Corrupt a checkpoint data page on disk, clear the cache so the next
  // miss must pread it, and watch the corruption counter flip.
  ASSERT_TRUE(
      fs.CorruptByte(JoinPath("/data", CheckpointFileName(0)), 300).ok());
  db.value()->store().ClearCache();
  uint64_t before = db.value()->Stats().backing_reads;
  for (int i = 0; i < 50 && db.value()->Stats().backing_corruptions == 0;
       ++i) {
    ASSERT_TRUE(db.value()->Query(q, force).ok());
  }
  stats = db.value()->Stats();
  EXPECT_GT(stats.backing_reads, before);
  EXPECT_GT(stats.backing_corruptions, 0u);
}

// ---------------------------------------------------------------------------
// Server surface: degraded STATS flag + typed write rejection over the wire

TEST(DurabilityServerTest, DegradedDbServesReadsAndRefusesWritesOverWire) {
  FaultFs fs;
  const std::string wal_path = JoinPath("/data", WalFileName(0));
  uint64_t second_record_offset = 0;
  {
    auto db = RankCubeDb::Open(MakeSeedTable(40),
                               DurableOptions(&fs, FsyncPolicy::kAlways));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->Insert({1, 1}, {0.5, 0.5}).ok());
    second_record_offset = fs.FileSize(wal_path).value();
    ASSERT_TRUE(db.value()->Insert({2, 2}, {0.25, 0.75}).ok());
    ASSERT_TRUE(db.value()->Insert({3, 0}, {0.75, 0.25}).ok());
  }
  // Rot the MIDDLE of the WAL (record 3 still parses beyond the hole, so
  // this is mid-log corruption, not a recoverable torn tail) => reopen
  // lands read-only.
  ASSERT_TRUE(fs.CorruptByte(wal_path, second_record_offset + 10).ok());

  auto db = RankCubeDb::Open(MakeSeedTable(40),
                             DurableOptions(&fs, FsyncPolicy::kAlways));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db.value()->read_only());

  RankCubeServer server(db.value().get(), {});
  ASSERT_TRUE(server.Start().ok());
  auto client = RankCubeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats.value().ok());
  std::string payload;
  for (const std::string& line : stats.value().lines) payload += line + "\n";
  EXPECT_NE(payload.find("read_only=1"), std::string::npos);
  EXPECT_NE(payload.find("degraded_reason="), std::string::npos);

  auto insert = client.value().Insert({1, 1}, {0.5, 0.5});
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert.value().code, WireCode::kNotSupported);

  WireQuerySpec spec;
  spec.k = 5;
  spec.order = "linear:1,1";
  auto tuples = client.value().QueryTuples(spec);
  EXPECT_TRUE(tuples.ok()) << tuples.status().ToString();
  server.Stop();
}

}  // namespace
}  // namespace rankcube
