#include <gtest/gtest.h>

#include "core/grid_cube.h"
#include "core/ranking_fragments.h"
#include "cube/fragments.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "reference.h"

namespace rankcube {
namespace {

Table MakeData(uint64_t rows = 5000, int s = 3, int32_t c = 10, int r = 2,
               uint64_t seed = 21) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = s;
  spec.cardinality = c;
  spec.num_rank_dims = r;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TEST(EquiDepthGridTest, BinCountFollowsFormula) {
  Table t = MakeData(4800, 3, 10, 2);
  EquiDepthGrid grid(t, {.block_size = 300, .min_bins = 1});
  // b = (T/P)^(1/R) = 16^(1/2) = 4.
  EXPECT_EQ(grid.bins_per_dim(), 4);
  EXPECT_EQ(grid.num_blocks(), 16u);
}

TEST(EquiDepthGridTest, BidCoordsRoundTrip) {
  Table t = MakeData(4800);
  EquiDepthGrid grid(t, {.block_size = 300});
  for (Bid b = 0; b < grid.num_blocks(); ++b) {
    EXPECT_EQ(grid.BidOfCoords(grid.CoordsOfBid(b)), b);
  }
}

TEST(EquiDepthGridTest, BlocksAreEquiDepth) {
  Table t = MakeData(9000, 3, 10, 2);
  EquiDepthGrid grid(t, {.block_size = 300});
  BaseBlockTable blocks(t, grid);
  // Uniform data: each block should hold roughly T / num_blocks tuples.
  double expected =
      static_cast<double>(t.num_rows()) / grid.num_blocks();
  for (Bid b = 0; b < grid.num_blocks(); ++b) {
    double n = static_cast<double>(blocks.GetBaseBlockNoCharge(b).size());
    EXPECT_NEAR(n, expected, expected * 0.5) << "block " << b;
  }
}

TEST(EquiDepthGridTest, PointsLandInTheirBox) {
  Table t = MakeData(3000);
  EquiDepthGrid grid(t, {.block_size = 300});
  std::vector<double> row(t.num_rank_dims());
  for (Tid i = 0; i < 200; ++i) {
    t.CopyRankRow(i, row.data());
    Bid b = grid.BidOfPoint(row.data());
    EXPECT_TRUE(grid.BoxOfBid(b).Contains(row))
        << "tuple " << i << " box " << grid.BoxOfBid(b).ToString();
  }
}

TEST(EquiDepthGridTest, NeighborsDifferInOneCoordinate) {
  Table t = MakeData(4800);
  EquiDepthGrid grid(t, {.block_size = 300});
  Bid center = grid.BidOfCoords({1, 1});
  auto nbs = grid.Neighbors(center);
  EXPECT_EQ(nbs.size(), 4u);  // interior block in 2-d: 4 neighbors
  Bid corner = grid.BidOfCoords({0, 0});
  EXPECT_EQ(grid.Neighbors(corner).size(), 2u);
}

TEST(GridCuboidTest, ScaleFactorExample4) {
  // Example 4: two selection dims of cardinality 2 -> sf = 2 on a 4x4 grid.
  SyntheticSpec spec;
  spec.num_rows = 4800;
  spec.num_sel_dims = 2;
  spec.cardinality = 2;
  spec.num_rank_dims = 2;
  Table t = GenerateSynthetic(spec);
  EquiDepthGrid grid(t, {.block_size = 300});
  ASSERT_EQ(grid.bins_per_dim(), 4);
  BaseBlockTable blocks(t, grid);
  GridCuboid cuboid = BuildGridCuboid(t, grid, blocks, {0, 1});
  EXPECT_EQ(cuboid.scale_factor, 2);
  EXPECT_EQ(cuboid.pseudo_bins, 2);  // 4 pseudo blocks total
}

TEST(GridCuboidTest, CellsPartitionAllTuples) {
  Table t = MakeData(2000);
  EquiDepthGrid grid(t, {.block_size = 300});
  BaseBlockTable blocks(t, grid);
  GridCuboid cuboid = BuildGridCuboid(t, grid, blocks, {0});
  size_t total = 0;
  for (const auto& [key, list] : cuboid.cells) total += list.size();
  EXPECT_EQ(total, t.num_rows());
}

TEST(GridRankingCubeTest, MatchesBruteForceOnWorkload) {
  Table t = MakeData(8000, 3, 10, 2);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 25;
  qspec.num_predicates = 2;
  qspec.k = 10;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = cube.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q)))
        << q.ToString();
  }
}

TEST(GridRankingCubeTest, DistanceFunctionWorkload) {
  Table t = MakeData(6000, 3, 10, 2);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 15;
  qspec.kind = QueryFunctionKind::kDistance;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = cube.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q))) << q.ToString();
  }
}

TEST(GridRankingCubeTest, RankingSubsetOfDimensions) {
  // r < R: function over 2 of 4 ranking dimensions (Fig 3.6 setting).
  Table t = MakeData(6000, 3, 10, 4);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  qspec.num_rank_used = 2;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = cube.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q))) << q.ToString();
  }
}

TEST(GridRankingCubeTest, EmptySelectionGivesEmptyResult) {
  Table t = MakeData(1000, 3, 10, 2);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io);
  TopKQuery q;
  // Guaranteed-empty conjunction is unlikely with anchored queries; force
  // an out-of-data combination by brute-force search.
  q.predicates = {{0, 0}, {1, 1}, {2, 2}};
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 1});
  q.k = 5;
  ExecStats stats;
  auto res = cube.TopK(q, &io, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q)));
}

TEST(GridRankingCubeTest, NoPredicates) {
  Table t = MakeData(2000);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io);
  TopKQuery q;
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 2});
  q.k = 5;
  ExecStats stats;
  auto res = cube.TopK(q, &io, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q)));
}

TEST(GridRankingCubeTest, KLargerThanMatches) {
  Table t = MakeData(500, 3, 20, 2);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io);
  TopKQuery q;
  q.predicates = {{0, t.sel(0, 0)}, {1, t.sel(0, 1)}, {2, t.sel(0, 2)}};
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 1});
  q.k = 100;  // more than can match
  ExecStats stats;
  auto res = cube.TopK(q, &io, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q)));
}

TEST(GridRankingCubeTest, ProgressiveSearchTouchesFewBlocks) {
  Table t = MakeData(20000, 3, 10, 2);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  uint64_t evaluated = 0;
  for (const auto& q : GenerateQueries(t, qspec)) {
    ExecStats stats;
    auto res = cube.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok());
    evaluated += stats.tuples_evaluated;
  }
  // Progressive access must evaluate far fewer tuples than 10 full scans.
  EXPECT_LT(evaluated, 10 * t.num_rows() / 4);
}

TEST(GridRankingCubeTest, MissingCuboidReportsNotFound) {
  Table t = MakeData(1000);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io, {.block_size = 300, .cuboid_dim_sets = {{0}}});
  TopKQuery q;
  q.predicates = {{1, 0}};
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 1});
  ExecStats stats;
  auto res = cube.TopK(q, &io, &stats);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), Status::Code::kNotFound);
}

// ------------------------------ fragments -------------------------------

TEST(FragmentGroupingTest, EvenGroups) {
  auto g = GroupDimensions(12, 2);
  ASSERT_EQ(g.size(), 6u);
  EXPECT_EQ(g[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(g[5], (std::vector<int>{10, 11}));
  auto g3 = GroupDimensions(8, 3);
  ASSERT_EQ(g3.size(), 3u);
  EXPECT_EQ(g3[2], (std::vector<int>{6, 7}));  // remainder group
}

TEST(FragmentGroupingTest, AllSubsets) {
  auto s = AllSubsets({3, 7});
  EXPECT_EQ(s.size(), 3u);  // {3}, {7}, {3,7}
}

TEST(CoveringCuboidsTest, Example6) {
  // Fragments (A1,A2,N1N2) and (A3,A4,N1N2); query on (A1, A4):
  // covering set must be {A1_N1N2, A4_N1N2}.
  std::vector<std::vector<int>> materialized = {
      {0}, {1}, {0, 1}, {2}, {3}, {2, 3}};
  auto cover = SelectCoveringCuboids(materialized, {0, 3});
  ASSERT_EQ(cover.size(), 2u);
  std::set<std::vector<int>> got{materialized[cover[0]],
                                 materialized[cover[1]]};
  EXPECT_TRUE(got.count({0}));
  EXPECT_TRUE(got.count({3}));
}

TEST(CoveringCuboidsTest, PrefersMaximalCuboid) {
  std::vector<std::vector<int>> materialized = {{0}, {1}, {0, 1}};
  auto cover = SelectCoveringCuboids(materialized, {0, 1});
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(materialized[cover[0]], (std::vector<int>{0, 1}));
}

TEST(RankingFragmentsTest, MatchesBruteForceAcrossCoverCounts) {
  Table t = MakeData(8000, 6, 8, 2);
  PageStore store;
  IoSession io{&store};
  RankingFragments frags(t, io, {.block_size = 300, .fragment_size = 2});
  // Queries intentionally spanning 1, 2 and 3 fragments.
  std::vector<std::vector<int>> dimsets = {{0, 1}, {0, 2}, {0, 2, 4}, {1, 3}};
  for (const auto& dims : dimsets) {
    TopKQuery q;
    for (int d : dims) q.predicates.push_back({d, t.sel(123, d)});
    q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 2});
    q.k = 10;
    ExecStats stats;
    auto res = frags.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q))) << q.ToString();
  }
}

TEST(RankingFragmentsTest, CoveringCountMatchesQueryShape) {
  Table t = MakeData(1000, 6, 4, 2);
  PageStore store;
  IoSession io{&store};
  RankingFragments frags(t, io, {.block_size = 300, .fragment_size = 2});
  TopKQuery q1;
  q1.predicates = {{0, 0}, {1, 0}};
  EXPECT_EQ(frags.CoveringCuboidCount(q1), 1);  // same fragment
  TopKQuery q2;
  q2.predicates = {{0, 0}, {2, 0}};
  EXPECT_EQ(frags.CoveringCuboidCount(q2), 2);
  TopKQuery q3;
  q3.predicates = {{0, 0}, {2, 0}, {4, 0}};
  EXPECT_EQ(frags.CoveringCuboidCount(q3), 3);
}

TEST(RankingFragmentsTest, SpaceGrowsLinearlyWithDimensions) {
  // Lemma 2: with fixed F, fragment space is linear in S.
  PageStore store;
  IoSession io{&store};
  Table t6 = MakeData(4000, 6, 8, 2, /*seed=*/1);
  Table t12 = MakeData(4000, 12, 8, 2, /*seed=*/1);
  RankingFragments f6(t6, io, {.block_size = 300, .fragment_size = 2});
  RankingFragments f12(t12, io, {.block_size = 300, .fragment_size = 2});
  double ratio = static_cast<double>(f12.SizeBytes()) / f6.SizeBytes();
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);  // ~2x cuboids, not 2^6 more
}

}  // namespace
}  // namespace rankcube
