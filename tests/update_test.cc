// Mutable-cube acceptance suite: after ANY interleaving of inserts and
// deletes — before and after Compact(), queried sequentially and through
// QueryParallel — every engine must return results tuple-identical to the
// same engine rebuilt from scratch on the equivalent static table.
//
// Three mechanisms are under test, and the parity predicate covers all of
// them at once:
//  * the engine-level delta overlay (stale structures stay exact),
//  * per-structure incremental maintenance (ApplyDelta / Maintain),
//  * compaction (maintain-or-rebuild + log truncation + stats refresh).
//
// "Equivalent static table" = the live rows in tid order. Tids densify in
// the rebuild, so expected results are compared through the monotone
// old-tid -> static-tid map (monotone, hence score-tie order preserving).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/query_builder.h"
#include "engine/registry.h"
#include "planner/rank_cube_db.h"

namespace rankcube {
namespace {

const std::vector<std::string>& AllEngines() {
  static const std::vector<std::string> kEngines = {
      "grid",          "fragments",     "signature",
      "signature_lossy", "table_scan",  "boolean_first",
      "ranking_first", "rank_mapping",  "index_merge"};
  return kEngines;
}

/// Logical content of the mutable db, maintained alongside every write.
struct Mirror {
  TableSchema schema;
  std::vector<std::pair<std::vector<int32_t>, std::vector<double>>> rows;
  std::vector<bool> live;

  void Add(std::vector<int32_t> sel, std::vector<double> rank) {
    rows.emplace_back(std::move(sel), std::move(rank));
    live.push_back(true);
  }

  /// The equivalent static table: live rows in tid order.
  Table StaticTable() const {
    Table t(schema);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!live[i]) continue;
      EXPECT_TRUE(t.AddRow(rows[i].first, rows[i].second).ok());
    }
    return t;
  }

  /// old tid -> static tid (monotone over live tids).
  std::vector<Tid> TidMap() const {
    std::vector<Tid> map(rows.size(), 0);
    Tid next = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (live[i]) map[i] = next++;
    }
    return map;
  }
};

struct Fixture {
  Mirror mirror;  // must precede db: MakeTable fills it during db's init
  RankCubeDb db;
  Rng rng{991};

  explicit Fixture(size_t rows = 2000)
      : db(MakeTable(&mirror, rows), RankCubeDb::Options()) {}

  static Table MakeTable(Mirror* mirror, size_t rows) {
    TableSchema schema;
    schema.sel_cardinality = {5, 4, 3};
    schema.num_rank_dims = 2;
    mirror->schema = schema;
    Table t(schema);
    Rng rng(7);
    for (size_t i = 0; i < rows; ++i) {
      std::vector<int32_t> sel = {
          static_cast<int32_t>(rng.UniformInt(5)),
          static_cast<int32_t>(rng.UniformInt(4)),
          static_cast<int32_t>(rng.UniformInt(3))};
      std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
      EXPECT_TRUE(t.AddRow(sel, rank).ok());
      mirror->Add(std::move(sel), std::move(rank));
    }
    return t;
  }

  void BuildAllEngines() {
    for (const std::string& name : AllEngines()) {
      auto engine = db.Engine(name);
      ASSERT_TRUE(engine.ok()) << name << ": " << engine.status().ToString();
    }
  }

  Result<Tid> Insert() {
    std::vector<int32_t> sel = {
        static_cast<int32_t>(rng.UniformInt(5)),
        static_cast<int32_t>(rng.UniformInt(4)),
        static_cast<int32_t>(rng.UniformInt(3))};
    std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
    auto tid = db.Insert(sel, rank);
    EXPECT_TRUE(tid.ok()) << tid.status().ToString();
    if (tid.ok()) {
      EXPECT_EQ(static_cast<size_t>(tid.value()), mirror.rows.size());
      mirror.Add(std::move(sel), std::move(rank));
    }
    return tid;
  }

  void Delete(Tid tid) {
    ASSERT_TRUE(db.Delete(tid).ok()) << "tid " << tid;
    mirror.live[tid] = false;
  }

  /// Deletes `n` random live rows among tids < `below`.
  void DeleteRandomLive(size_t n, Tid below) {
    while (n > 0) {
      Tid t = static_cast<Tid>(rng.UniformInt(below));
      if (!mirror.live[t]) continue;
      Delete(t);
      --n;
    }
  }

  std::vector<TopKQuery> Workload() const {
    return {
        QueryBuilder().OrderByLinear({1.0, 2.0}).Limit(10).Build(),
        QueryBuilder().OrderByLinear({3.0, 1.0}).Limit(50).Build(),
        QueryBuilder().Where(0, 2).OrderByLinear({1.0, 1.0}).Limit(10).Build(),
        QueryBuilder()
            .Where(1, 1)
            .Where(2, 0)
            .OrderByLinear({2.0, 1.0})
            .Limit(10)
            .Build(),
        QueryBuilder()
            .Where(0, 4)
            .OrderByDistance({1.0, 1.0}, {0.3, 0.6})
            .Limit(7)
            .Build(),
    };
  }

  /// Maps a mutable-db result onto static-table tids. Every returned tuple
  /// must be live.
  std::vector<ScoredTuple> Mapped(const std::vector<ScoredTuple>& tuples) {
    std::vector<Tid> map = mirror.TidMap();
    std::vector<ScoredTuple> out;
    out.reserve(tuples.size());
    for (const ScoredTuple& st : tuples) {
      EXPECT_TRUE(mirror.live[st.tid]) << "tombstoned tid " << st.tid
                                       << " surfaced";
      out.push_back({map[st.tid], st.score});
    }
    return out;
  }

  /// The acceptance predicate: every engine, forced on the mutable db,
  /// against the same engine rebuilt from scratch on the static table.
  void ExpectParityWithScratchRebuild(const std::string& trace) {
    SCOPED_TRACE(trace);
    Table static_table = mirror.StaticTable();
    PageStore static_store;
    IoSession static_io{&static_store};
    std::vector<TopKQuery> workload = Workload();
    for (const std::string& name : AllEngines()) {
      SCOPED_TRACE("engine: " + name);
      auto scratch =
          EngineRegistry::Global().Create(name, static_table, static_io);
      ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
      for (const TopKQuery& query : workload) {
        if (!(*scratch)->SupportsPredicates() && !query.predicates.empty()) {
          continue;
        }
        SCOPED_TRACE(query.ToString());
        ExecContext ctx;
        ctx.io = &static_io;
        auto want = (*scratch)->Execute(query, ctx);
        ASSERT_TRUE(want.ok()) << want.status().ToString();

        QueryOptions force;
        force.force_engine = name;
        auto got = db.Query(query, force);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(Mapped(got.value().tuples), want.value().tuples);
      }
    }
  }
};

TEST(UpdateTest, InterleavedWritesPreAndPostCompactMatchScratchRebuild) {
  Fixture fx;
  fx.BuildAllEngines();
  fx.ExpectParityWithScratchRebuild("epoch 0 (fresh structures)");

  // --- phase 1: writes against built structures (overlay must cover) -----
  std::vector<Tid> fresh;
  for (int i = 0; i < 60; ++i) {
    auto tid = fx.Insert();
    ASSERT_TRUE(tid.ok());
    fresh.push_back(tid.value());
  }
  // Delete the current top-1 of a workload query (a top-k member), some
  // random old rows, and some rows born in this delta.
  auto top = BruteForceTopK(fx.db.table(), fx.Workload()[0]);
  ASSERT_FALSE(top.empty());
  fx.Delete(top[0].tid);
  fx.DeleteRandomLive(40, /*below=*/2000);
  fx.Delete(fresh[3] == top[0].tid ? fresh[4] : fresh[3]);
  fx.Delete(fresh[40] == top[0].tid ? fresh[41] : fresh[40]);
  // Deterministically best rows for every workload query: delta inserts
  // that MUST enter each top-k. This is the configuration that catches an
  // engine double counting the delta (inner execution reading past its
  // build snapshot + the overlay scanning the tail again).
  ASSERT_TRUE(fx.db.Insert({2, 1, 0}, {0.0, 0.0}).ok());
  fx.mirror.Add({2, 1, 0}, {0.0, 0.0});
  ASSERT_TRUE(fx.db.Insert({4, 0, 1}, {0.3, 0.6}).ok());  // q5's target
  fx.mirror.Add({4, 0, 1}, {0.3, 0.6});
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(fx.Insert().ok());

  auto freshness = fx.db.FreshnessByEngine();
  ASSERT_FALSE(freshness.empty());
  EXPECT_FALSE(freshness.at("grid").fresh());
  EXPECT_EQ(freshness.at("grid").pending_inserts, 87u);
  EXPECT_EQ(freshness.at("grid").pending_deletes, 43u);
  EXPECT_TRUE(freshness.at("table_scan").fresh());

  fx.ExpectParityWithScratchRebuild("pre-compact (stale structures)");

  // --- compaction ---------------------------------------------------------
  auto compacted = fx.db.Compact();
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(compacted.value().absorbed_inserts, 87u);
  EXPECT_EQ(compacted.value().absorbed_deletes, 43u);
  // grid, fragments, signature, signature_lossy, ranking_first maintain
  // incrementally; boolean_first, rank_mapping, index_merge rebuild;
  // table_scan was never stale.
  EXPECT_EQ(compacted.value().maintained, 5u);
  EXPECT_EQ(compacted.value().rebuilt, 3u);
  EXPECT_GT(compacted.value().pages, 0u);
  EXPECT_TRUE(fx.db.table().delta().empty());
  for (const auto& [name, f] : fx.db.FreshnessByEngine()) {
    EXPECT_TRUE(f.fresh()) << name;
  }

  fx.ExpectParityWithScratchRebuild("post-compact (maintained structures)");

  // --- phase 2: drift again on top of the compacted state ----------------
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(fx.Insert().ok());
  fx.DeleteRandomLive(20, static_cast<Tid>(fx.mirror.rows.size()));
  fx.ExpectParityWithScratchRebuild("post-compact drift (stale again)");

  auto compacted2 = fx.db.Compact();
  ASSERT_TRUE(compacted2.ok());
  fx.ExpectParityWithScratchRebuild("after second compaction");
}

TEST(UpdateTest, QueryParallelStaysExactUnderWrites) {
  Fixture fx;
  fx.BuildAllEngines();
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(fx.Insert().ok());
  fx.DeleteRandomLive(30, 2000);

  Table static_table = fx.mirror.StaticTable();
  std::vector<TopKQuery> workload;
  std::vector<std::vector<ScoredTuple>> want;
  for (const TopKQuery& q : fx.Workload()) {
    // Repeat each query so several workers race on the same structures.
    for (int copy = 0; copy < 4; ++copy) {
      workload.push_back(q);
      want.push_back(BruteForceTopK(static_table, q));
    }
  }

  // Planner-routed parallel execution over stale structures...
  BatchOptions batch;
  batch.keep_results = true;
  auto report = fx.db.QueryParallel(workload, /*num_threads=*/4,
                                    QueryOptions(), batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().failed, 0u);
  ASSERT_EQ(report.value().results.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(fx.Mapped(report.value().results[i].tuples), want[i])
        << workload[i].ToString();
  }

  // ... and the same workload forced through one stale structure each.
  for (const std::string& name : {std::string("grid"),
                                  std::string("signature"),
                                  std::string("boolean_first")}) {
    QueryOptions force;
    force.force_engine = name;
    auto forced = fx.db.QueryParallel(workload, 4, force, batch);
    ASSERT_TRUE(forced.ok()) << forced.status().ToString();
    ASSERT_EQ(forced.value().failed, 0u);
    for (size_t i = 0; i < workload.size(); ++i) {
      EXPECT_EQ(fx.Mapped(forced.value().results[i].tuples), want[i])
          << name << ": " << workload[i].ToString();
    }
  }
}

TEST(UpdateTest, QueryEntirelyInsideDelta) {
  // Base rows never use sel0 == 4; every delta row does. A predicate on
  // that value is answerable only from the delta overlay — the stale
  // structures contribute nothing (grid: missing cell; signature: empty
  // cell pruner prunes everything).
  Mirror mirror;
  TableSchema schema;
  schema.sel_cardinality = {5, 4, 3};
  schema.num_rank_dims = 2;
  mirror.schema = schema;
  Table t(schema);
  Rng rng(17);
  for (int i = 0; i < 1200; ++i) {
    std::vector<int32_t> sel = {
        static_cast<int32_t>(rng.UniformInt(4)),  // only 0..3
        static_cast<int32_t>(rng.UniformInt(4)),
        static_cast<int32_t>(rng.UniformInt(3))};
    std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
    ASSERT_TRUE(t.AddRow(sel, rank).ok());
    mirror.Add(std::move(sel), std::move(rank));
  }
  RankCubeDb db(std::move(t), RankCubeDb::Options());
  for (const std::string& name : AllEngines()) {
    ASSERT_TRUE(db.Engine(name).ok());
  }
  for (int i = 0; i < 40; ++i) {
    std::vector<int32_t> sel = {4, static_cast<int32_t>(rng.UniformInt(4)),
                                static_cast<int32_t>(rng.UniformInt(3))};
    std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
    ASSERT_TRUE(db.Insert(sel, rank).ok());
    mirror.Add(std::move(sel), std::move(rank));
  }

  TopKQuery query =
      QueryBuilder().Where(0, 4).OrderByLinear({1.0, 1.0}).Limit(10).Build();
  Table static_table = mirror.StaticTable();
  std::vector<ScoredTuple> want = BruteForceTopK(static_table, query);
  ASSERT_EQ(want.size(), 10u);

  std::vector<Tid> map = mirror.TidMap();
  for (const std::string& name : AllEngines()) {
    if (name == "index_merge") continue;  // no predicates in its model
    SCOPED_TRACE(name);
    QueryOptions force;
    force.force_engine = name;
    auto got = db.Query(query, force);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    std::vector<ScoredTuple> mapped;
    for (const ScoredTuple& st : got.value().tuples) {
      mapped.push_back({map[st.tid], st.score});
    }
    EXPECT_EQ(mapped, want);
  }
}

TEST(UpdateTest, MaintainIsIdempotentAndBatchExecutorTriggersIt) {
  // Direct engine maintenance, without the db facade: a grid engine over a
  // mutable table, brought up to date by BatchExecutor's between-batches
  // maintenance point.
  Mirror mirror;
  Table table = Fixture::MakeTable(&mirror, 1500);
  PageStore store;
  IoSession io{&store};
  auto built = EngineRegistry::Global().Create("grid", table, io);
  ASSERT_TRUE(built.ok());
  RankingEngine* engine = built->get();
  ASSERT_TRUE(engine->SupportsMaintenance());

  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    std::vector<int32_t> sel = {
        static_cast<int32_t>(rng.UniformInt(5)),
        static_cast<int32_t>(rng.UniformInt(4)),
        static_cast<int32_t>(rng.UniformInt(3))};
    std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
    ASSERT_TRUE(table.Insert(sel, rank).ok());
  }
  ASSERT_TRUE(table.Delete(10).ok());
  EXPECT_FALSE(engine->Freshness().fresh());

  TopKQuery query =
      QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(10).Build();
  std::vector<ScoredTuple> want = BruteForceTopK(table, query);

  BatchOptions options;
  options.keep_results = true;
  options.auto_maintain = true;
  BatchExecutor executor(engine, options);
  auto report = executor.ExecuteAll({query}, store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().maintenance_pages, 0u);
  EXPECT_TRUE(engine->Freshness().fresh());
  ASSERT_EQ(report.value().results.size(), 1u);
  EXPECT_EQ(report.value().results[0].tuples, want);

  // Empty delta: a second maintenance pass is a free no-op.
  auto again = executor.ExecuteAll({query}, store);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().maintenance_pages, 0u);
  EXPECT_EQ(again.value().results[0].tuples, want);
}

TEST(UpdateTest, ConcurrentWritersAndParallelReadersAreSerialized) {
  // A writer thread streams inserts/deletes/compactions while the main
  // thread runs parallel batches. Results are only checkable weakly (each
  // batch sees *some* consistent epoch), but the run must be TSan-clean:
  // the db's reader/writer gate is what keeps a column append from racing
  // a worker's rank_col() view.
  Fixture fx(1000);
  fx.BuildAllEngines();
  TopKQuery query =
      QueryBuilder().Where(0, 1).OrderByLinear({1.0, 1.0}).Limit(5).Build();
  std::vector<TopKQuery> workload(8, query);

  std::thread writer([&] {
    Rng rng(123);
    for (int round = 0; round < 30; ++round) {
      std::vector<int32_t> sel = {
          static_cast<int32_t>(rng.UniformInt(5)),
          static_cast<int32_t>(rng.UniformInt(4)),
          static_cast<int32_t>(rng.UniformInt(3))};
      std::vector<double> rank = {rng.Uniform01(), rng.Uniform01()};
      ASSERT_TRUE(fx.db.Insert(sel, rank).ok());
      (void)fx.db.Delete(static_cast<Tid>(rng.UniformInt(1000)));
      if (round % 10 == 9) ASSERT_TRUE(fx.db.Compact().ok());
    }
  });
  for (int round = 0; round < 20; ++round) {
    BatchOptions batch;
    batch.keep_results = true;
    auto report = fx.db.QueryParallel(workload, 4, QueryOptions(), batch);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_EQ(report.value().failed, 0u);
    for (const TopKResult& r : report.value().results) {
      ASSERT_EQ(r.tuples.size(), 5u);
      for (size_t i = 1; i < r.tuples.size(); ++i) {
        EXPECT_LE(r.tuples[i - 1].score, r.tuples[i].score);
      }
    }
  }
  writer.join();
}

TEST(UpdateTest, PlannerPricesStalenessAndCompactionRestoresRouting) {
  // A structure that drifted keeps answering exactly (overlay) but pays
  // the delta tail in the estimate; Explain must reflect that, and the
  // estimate must drop back after Compact().
  Fixture fx;
  TopKQuery query =
      QueryBuilder().Where(0, 1).OrderByLinear({1.0, 1.0}).Limit(10).Build();
  ASSERT_TRUE(fx.db.Query(query).ok());  // builds the planner's choice

  auto before = fx.db.Explain(query);
  ASSERT_TRUE(before.ok());
  const std::string chosen = before.value().chosen_engine;
  double est_fresh = before.value().estimated_pages;

  for (int i = 0; i < 400; ++i) ASSERT_TRUE(fx.Insert().ok());
  QueryOptions force;
  force.force_engine = chosen;
  auto stale = fx.db.Explain(query, force);
  ASSERT_TRUE(stale.ok());
  EXPECT_GT(stale.value().estimated_pages, est_fresh);

  ASSERT_TRUE(fx.db.Compact().ok());
  auto after = fx.db.Explain(query, force);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value().estimated_pages, stale.value().estimated_pages);
}

}  // namespace
}  // namespace rankcube
