// Tests for the thesis's discussion-section extensions that this library
// implements: §4.5 lossy bloom-filter signatures (with table verification)
// and §3.6.3 ID-list compression.
#include <gtest/gtest.h>

#include "bitmap/tidlist.h"
#include "common/rng.h"
#include "core/grid_cube.h"
#include "core/signature_cube.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "reference.h"

namespace rankcube {
namespace {

TEST(TidListTest, RoundTrip) {
  std::vector<Tid> tids = {0, 1, 7, 100, 101, 4096, 1000000};
  auto bytes = EncodeTidList(tids);
  EXPECT_EQ(DecodeTidList(bytes), tids);
  EXPECT_EQ(TidListEncodedSize(tids), bytes.size());
}

TEST(TidListTest, EmptyAndSingle) {
  EXPECT_TRUE(DecodeTidList(EncodeTidList({})).empty());
  EXPECT_EQ(DecodeTidList(EncodeTidList({42})), (std::vector<Tid>{42}));
}

TEST(TidListTest, RandomAscendingListsRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Tid> tids;
    Tid cur = 0;
    size_t n = rng.UniformInt(200);
    for (size_t i = 0; i < n; ++i) {
      cur += static_cast<Tid>(rng.UniformInt(1000) + 1);
      tids.push_back(cur);
    }
    EXPECT_EQ(DecodeTidList(EncodeTidList(tids)), tids);
  }
}

TEST(TidListTest, DenseListsCompressWell) {
  std::vector<Tid> dense;
  for (Tid t = 5000; t < 6000; ++t) dense.push_back(t);
  // Deltas of 1: one byte each (plus the base) vs 4 bytes raw.
  EXPECT_LT(TidListEncodedSize(dense), dense.size() * 4 / 2);
}

TEST(GridCuboidCompressionTest, CompressedSmallerThanRaw) {
  SyntheticSpec spec;
  spec.num_rows = 20000;
  spec.num_sel_dims = 2;
  spec.cardinality = 4;  // few cells: long tid runs compress well
  spec.num_rank_dims = 2;
  Table t = GenerateSynthetic(spec);
  EquiDepthGrid grid(t, {.block_size = 300});
  BaseBlockTable blocks(t, grid);
  GridCuboid cuboid = BuildGridCuboid(t, grid, blocks, {0});
  EXPECT_LT(cuboid.CompressedSizeBytes(), cuboid.SizeBytes());
}

TEST(LossyBloomTest, MatchesBruteForce) {
  SyntheticSpec spec;
  spec.num_rows = 6000;
  spec.num_sel_dims = 3;
  spec.cardinality = 10;
  spec.num_rank_dims = 2;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SignatureCubeOptions opt;
  opt.lossy_bloom = true;
  SignatureCube cube(t, io, opt);
  QueryWorkloadSpec qs;
  qs.num_queries = 15;
  qs.num_predicates = 2;
  for (const auto& q : GenerateQueries(t, qs)) {
    ExecStats stats;
    auto res = cube.TopKLossy(q, &io, &stats);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q))) << q.ToString();
  }
}

TEST(LossyBloomTest, SmallerThanExactSignatures) {
  SyntheticSpec spec;
  spec.num_rows = 20000;
  spec.num_sel_dims = 3;
  spec.cardinality = 50;
  spec.num_rank_dims = 2;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SignatureCubeOptions opt;
  opt.lossy_bloom = true;
  opt.bloom_bits_per_entry = 4.0;  // aggressive lossy budget
  SignatureCube cube(t, io, opt);
  EXPECT_GT(cube.LossyBloomBytes(), 0u);
  EXPECT_LT(cube.LossyBloomBytes(), cube.CompressedBytes());
}

TEST(LossyBloomTest, VerificationChargesTableAccesses) {
  SyntheticSpec spec;
  spec.num_rows = 8000;
  spec.num_sel_dims = 2;
  spec.cardinality = 10;
  spec.num_rank_dims = 2;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SignatureCubeOptions opt;
  opt.lossy_bloom = true;
  SignatureCube cube(t, io, opt);
  TopKQuery q;
  q.predicates = {{0, t.sel(0, 0)}, {1, t.sel(0, 1)}};
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 1});
  q.k = 10;
  io.ResetStats();
  ExecStats stats;
  auto res = cube.TopKLossy(q, &io, &stats);
  ASSERT_TRUE(res.ok());
  // Bloom pruning cannot decide tuples exactly: candidates are verified
  // against the heap file.
  EXPECT_GT(io.stats(IoCategory::kTable).physical, 0u);
}

TEST(LossyBloomTest, DisabledCubeRejectsGracefully) {
  SyntheticSpec spec;
  spec.num_rows = 500;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(t, io);  // lossy_bloom off
  TopKQuery q;
  q.predicates = {{0, t.sel(0, 0)}};
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 1});
  ExecStats stats;
  auto res = cube.TopKLossy(q, &io, &stats);
  // No bloom for the cell: reported as an empty result (value absent) —
  // never a crash; exact TopK remains available.
  ASSERT_TRUE(res.ok());
  auto exact = cube.TopK(q, &io, &stats);
  ASSERT_TRUE(exact.ok());
}

}  // namespace
}  // namespace rankcube
