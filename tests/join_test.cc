#include <gtest/gtest.h>

#include <algorithm>

#include "gen/queries.h"
#include "gen/synthetic.h"
#include "join/spjr_system.h"

namespace rankcube {
namespace {

Table MakeRelation(uint64_t rows, int32_t join_card, uint64_t seed) {
  // dim 0 = join attribute, dims 1..2 = local selections.
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_sel_dims = 3;
  spec.sel_cardinalities = {join_card, 5, 5};
  spec.num_rank_dims = 2;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

/// Brute-force SPJR oracle: filter, equi-join, rank by score sum.
std::vector<double> OracleJoinScores(const std::vector<const Table*>& tables,
                                     const SpjrQuery& query) {
  // Per relation: qualifying (key, score) pairs.
  std::vector<std::vector<std::pair<int32_t, double>>> qual(tables.size());
  for (size_t r = 0; r < tables.size(); ++r) {
    const Table& t = *tables[r];
    const auto& rq = query.relations[r];
    std::vector<double> point(t.num_rank_dims());
    for (Tid i = 0; i < static_cast<Tid>(t.num_rows()); ++i) {
      bool ok = true;
      for (const auto& p : rq.predicates) {
        if (t.sel(i, p.dim) != p.value) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (int d = 0; d < t.num_rank_dims(); ++d) point[d] = t.rank(i, d);
      qual[r].push_back(
          {t.sel(i, rq.join_dim), rq.function->Evaluate(point.data())});
    }
  }
  // m-way nested join on key.
  std::vector<double> scores;
  std::vector<size_t> idx(tables.size(), 0);
  // group by key per relation
  std::vector<std::unordered_map<int32_t, std::vector<double>>> by_key(
      tables.size());
  for (size_t r = 0; r < tables.size(); ++r) {
    for (auto& [k, s] : qual[r]) by_key[r][k].push_back(s);
  }
  for (const auto& [key, list0] : by_key[0]) {
    bool everywhere = true;
    for (size_t r = 1; r < tables.size(); ++r) {
      if (!by_key[r].count(key)) everywhere = false;
    }
    if (!everywhere) continue;
    // cartesian product of score lists
    std::vector<double> acc = list0;
    for (size_t r = 1; r < tables.size(); ++r) {
      std::vector<double> next;
      for (double a : acc) {
        for (double b : by_key[r].at(key)) next.push_back(a + b);
      }
      acc = std::move(next);
    }
    scores.insert(scores.end(), acc.begin(), acc.end());
  }
  std::sort(scores.begin(), scores.end());
  if (scores.size() > static_cast<size_t>(query.k)) scores.resize(query.k);
  return scores;
}

std::vector<double> ScoresOfJoined(const std::vector<JoinedResult>& v) {
  std::vector<double> s;
  for (const auto& r : v) s.push_back(r.score);
  return s;
}

void ExpectNear(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(RankJoinTest, TwoWayMatchesOracle) {
  Table r1 = MakeRelation(2000, 50, 1);
  Table r2 = MakeRelation(1500, 50, 2);
  PageStore store;
  IoSession io{&store};
  SpjrSystem sys(store);
  sys.AddRelation(r1);
  sys.AddRelation(r2);

  SpjrQuery q;
  q.k = 10;
  q.relations.resize(2);
  q.relations[0].join_dim = 0;
  q.relations[0].predicates = {{1, r1.sel(7, 1)}};
  q.relations[0].function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0});
  q.relations[1].join_dim = 0;
  q.relations[1].predicates = {{2, r2.sel(9, 2)}};
  q.relations[1].function =
      std::make_shared<LinearFunction>(std::vector<double>{2.0, 0.5});

  ExecStats stats;
  auto res = sys.TopK(q, &io, &stats);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ExpectNear(ScoresOfJoined(*res), OracleJoinScores({&r1, &r2}, q));
}

TEST(RankJoinTest, BaselineMatchesOracleAndSystem) {
  Table r1 = MakeRelation(1200, 30, 3);
  Table r2 = MakeRelation(900, 30, 4);
  PageStore store;
  IoSession io{&store};
  SpjrSystem sys(store);
  sys.AddRelation(r1);
  sys.AddRelation(r2);

  SpjrQuery q;
  q.k = 15;
  q.relations.resize(2);
  for (int r = 0; r < 2; ++r) {
    q.relations[r].join_dim = 0;
    q.relations[r].function =
        std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0});
  }
  ExecStats s1, s2;
  auto fast = sys.TopK(q, &io, &s1);
  auto base = sys.BaselineTopK(q, &io, &s2);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(base.ok());
  auto oracle = OracleJoinScores({&r1, &r2}, q);
  ExpectNear(ScoresOfJoined(*fast), oracle);
  ExpectNear(ScoresOfJoined(*base), oracle);
}

TEST(RankJoinTest, ThreeWayMatchesOracle) {
  Table r1 = MakeRelation(800, 20, 5);
  Table r2 = MakeRelation(700, 20, 6);
  Table r3 = MakeRelation(600, 20, 7);
  PageStore store;
  IoSession io{&store};
  SpjrSystem sys(store);
  sys.AddRelation(r1);
  sys.AddRelation(r2);
  sys.AddRelation(r3);

  SpjrQuery q;
  q.k = 8;
  q.relations.resize(3);
  for (int r = 0; r < 3; ++r) {
    q.relations[r].join_dim = 0;
    q.relations[r].function =
        std::make_shared<LinearFunction>(std::vector<double>{1.0, 0.7});
  }
  q.relations[1].predicates = {{1, r2.sel(3, 1)}};
  ExecStats stats;
  auto res = sys.TopK(q, &io, &stats);
  ASSERT_TRUE(res.ok());
  ExpectNear(ScoresOfJoined(*res), OracleJoinScores({&r1, &r2, &r3}, q));
}

TEST(RankJoinTest, DistanceFunctionsAcrossRelations) {
  Table r1 = MakeRelation(1000, 25, 8);
  Table r2 = MakeRelation(1000, 25, 9);
  PageStore store;
  IoSession io{&store};
  SpjrSystem sys(store);
  sys.AddRelation(r1);
  sys.AddRelation(r2);

  SpjrQuery q;
  q.k = 12;
  q.relations.resize(2);
  q.relations[0].join_dim = 0;
  q.relations[0].function = std::make_shared<QuadraticDistance>(
      std::vector<double>{1.0, 1.0}, std::vector<double>{0.3, 0.3});
  q.relations[1].join_dim = 0;
  q.relations[1].function = std::make_shared<QuadraticDistance>(
      std::vector<double>{1.0, 2.0}, std::vector<double>{0.8, 0.1});
  ExecStats stats;
  auto res = sys.TopK(q, &io, &stats);
  ASSERT_TRUE(res.ok());
  ExpectNear(ScoresOfJoined(*res), OracleJoinScores({&r1, &r2}, q));
}

TEST(RankJoinTest, RankAwarePullsFarFewerTuplesThanBaseline) {
  Table r1 = MakeRelation(20000, 40, 10);
  Table r2 = MakeRelation(20000, 40, 11);
  PageStore store;
  IoSession io{&store};
  SpjrSystem sys(store);
  sys.AddRelation(r1);
  sys.AddRelation(r2);
  SpjrQuery q;
  q.k = 5;
  q.relations.resize(2);
  for (int r = 0; r < 2; ++r) {
    q.relations[r].join_dim = 0;
    q.relations[r].function =
        std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0});
  }
  ExecStats stats;
  RankJoinStats js;
  auto res = sys.TopK(q, &io, &stats, &js);
  ASSERT_TRUE(res.ok());
  EXPECT_LT(js.tuples_pulled, r1.num_rows() / 4);  // early termination bites
}

TEST(RankJoinTest, EmptyJoinReturnsNothing) {
  // Disjoint key domains: relation 2's keys are shifted out of overlap by
  // predicates that never match.
  Table r1 = MakeRelation(300, 10, 12);
  Table r2 = MakeRelation(300, 10, 13);
  PageStore store;
  IoSession io{&store};
  SpjrSystem sys(store);
  sys.AddRelation(r1);
  sys.AddRelation(r2);
  SpjrQuery q;
  q.k = 5;
  q.relations.resize(2);
  q.relations[0].join_dim = 0;
  q.relations[0].predicates = {{1, 4}, {2, 4}};  // likely rare combo
  q.relations[0].function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0});
  q.relations[1].join_dim = 0;
  q.relations[1].function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0});
  ExecStats stats;
  auto res = sys.TopK(q, &io, &stats);
  ASSERT_TRUE(res.ok());
  ExpectNear(ScoresOfJoined(*res), OracleJoinScores({&r1, &r2}, q));
}

TEST(OptimizerTest, SelectiveQueriesMaterialize) {
  Table r1 = MakeRelation(50000, 1000, 14);
  PageStore store;
  IoSession io{&store};
  PostingIndex posting(r1);
  // Highly selective: three predicates.
  std::vector<Predicate> selective = {{0, 1}, {1, 2}, {2, 3}};
  AccessPlan p1 = ChooseAccessPath(r1, posting, selective, 10, store);
  EXPECT_EQ(p1.kind, AccessPlan::Kind::kMaterializeSort) << p1.explain;
  // Unselective: no predicates.
  AccessPlan p2 = ChooseAccessPath(r1, posting, {}, 10, store);
  EXPECT_EQ(p2.kind, AccessPlan::Kind::kCubeStream) << p2.explain;
}

TEST(OptimizerTest, EstimatesMatchIndependence) {
  Table r1 = MakeRelation(10000, 10, 15);
  PostingIndex posting(r1);
  double est = EstimateMatches(r1, posting, {{1, 0}, {2, 0}});
  // Uniform 5x5: expect ~ T/25.
  EXPECT_NEAR(est, 10000.0 / 25, 150.0);
}

TEST(RankedStreamTest, EmitsAscendingScores) {
  Table r1 = MakeRelation(3000, 10, 16);
  PageStore store;
  IoSession io{&store};
  SignatureCube cube(r1, io);
  auto f = std::make_shared<LinearFunction>(std::vector<double>{1.0, 1.0});
  ExecStats stats;
  auto pruner = cube.MakePruner({{1, r1.sel(0, 1)}});
  ASSERT_TRUE(pruner.ok());
  CubeRankedStream stream(r1, cube, f, std::move(std::move(pruner).value()),
                          &io, &stats);
  double prev = -1.0;
  Tid tid;
  double score;
  int n = 0;
  while (stream.GetNext(&tid, &score) && n < 200) {
    EXPECT_GE(score, prev);
    EXPECT_EQ(r1.sel(tid, 1), r1.sel(0, 1));
    EXPECT_LE(stream.BestPossibleNext() + 1e-12,
              kInfScore);  // bound well-defined
    prev = score;
    ++n;
  }
  EXPECT_GT(n, 0);
}

}  // namespace
}  // namespace rankcube
