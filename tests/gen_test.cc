#include <gtest/gtest.h>

#include <cmath>

#include "gen/covtype.h"
#include "gen/queries.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

TEST(SyntheticTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_rows = 500;
  spec.num_sel_dims = 4;
  spec.cardinality = 7;
  spec.num_rank_dims = 3;
  Table t = GenerateSynthetic(spec);
  EXPECT_EQ(t.num_rows(), 500u);
  EXPECT_EQ(t.num_sel_dims(), 4);
  EXPECT_EQ(t.num_rank_dims(), 3);
  for (Tid r = 0; r < 500; ++r) {
    for (int d = 0; d < 4; ++d) {
      EXPECT_GE(t.sel(r, d), 0);
      EXPECT_LT(t.sel(r, d), 7);
    }
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(t.rank(r, d), 0.0);
      EXPECT_LE(t.rank(r, d), 1.0);
    }
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.num_rows = 50;
  Table a = GenerateSynthetic(spec);
  Table b = GenerateSynthetic(spec);
  for (Tid r = 0; r < 50; ++r) {
    EXPECT_EQ(a.sel(r, 0), b.sel(r, 0));
    EXPECT_DOUBLE_EQ(a.rank(r, 0), b.rank(r, 0));
  }
}

TEST(SyntheticTest, PerDimensionCardinalities) {
  SyntheticSpec spec;
  spec.num_rows = 100;
  spec.sel_cardinalities = {2, 50};
  spec.num_sel_dims = 2;
  Table t = GenerateSynthetic(spec);
  EXPECT_EQ(t.schema().sel_cardinality[0], 2);
  EXPECT_EQ(t.schema().sel_cardinality[1], 50);
  for (Tid r = 0; r < 100; ++r) EXPECT_LT(t.sel(r, 0), 2);
}

double PearsonR(const Table& t, int d1, int d2) {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = static_cast<double>(t.num_rows());
  for (Tid r = 0; r < t.num_rows(); ++r) {
    double x = t.rank(r, d1), y = t.rank(r, d2);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  double cov = sxy / n - sx / n * sy / n;
  double vx = sxx / n - sx / n * sx / n;
  double vy = syy / n - sy / n * sy / n;
  return cov / std::sqrt(vx * vy);
}

TEST(SyntheticTest, CorrelatedDataIsCorrelated) {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  spec.distribution = RankDistribution::kCorrelated;
  Table t = GenerateSynthetic(spec);
  EXPECT_GT(PearsonR(t, 0, 1), 0.5);
}

TEST(SyntheticTest, AntiCorrelatedDataIsAntiCorrelated) {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  spec.distribution = RankDistribution::kAntiCorrelated;
  Table t = GenerateSynthetic(spec);
  EXPECT_LT(PearsonR(t, 0, 1), -0.3);
}

TEST(SyntheticTest, UniformRoughlyIndependent) {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  Table t = GenerateSynthetic(spec);
  EXPECT_NEAR(PearsonR(t, 0, 1), 0.0, 0.1);
}

TEST(CovtypeTest, SchemaMatchesPublishedStatistics) {
  CovtypeSpec spec;
  spec.base_rows = 2000;
  Table t = GenerateCovtypeLike(spec);
  ASSERT_EQ(t.num_sel_dims(), 12);
  EXPECT_EQ(t.num_rank_dims(), 3);
  EXPECT_EQ(t.schema().sel_cardinality[0], 255);
  EXPECT_EQ(t.schema().sel_cardinality[4], 7);
  EXPECT_EQ(t.schema().sel_cardinality[11], 2);
  EXPECT_EQ(t.num_rows(), 2000u * 5);  // 5x duplication
}

TEST(QueryGenTest, RespectsSpec) {
  SyntheticSpec dspec;
  dspec.num_rows = 200;
  dspec.num_sel_dims = 5;
  Table t = GenerateSynthetic(dspec);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 10;
  qspec.num_predicates = 3;
  qspec.num_rank_used = 2;
  qspec.k = 7;
  auto queries = GenerateQueries(t, qspec);
  ASSERT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_EQ(q.k, 7);
    EXPECT_EQ(q.predicates.size(), 3u);
    ASSERT_NE(q.function, nullptr);
    EXPECT_LE(q.function->involved_dims().size(), 2u);
    // Predicates reference distinct, sorted dims.
    for (size_t i = 1; i < q.predicates.size(); ++i) {
      EXPECT_LT(q.predicates[i - 1].dim, q.predicates[i].dim);
    }
  }
}

TEST(QueryGenTest, AnchoredQueriesAreNonEmpty) {
  SyntheticSpec dspec;
  dspec.num_rows = 100;
  dspec.cardinality = 50;  // sparse: random values would often be empty
  Table t = GenerateSynthetic(dspec);
  QueryWorkloadSpec qspec;
  qspec.num_queries = 20;
  qspec.num_predicates = 2;
  for (const auto& q : GenerateQueries(t, qspec)) {
    bool any = false;
    for (Tid r = 0; r < t.num_rows() && !any; ++r) {
      bool ok = true;
      for (const auto& p : q.predicates) {
        if (t.sel(r, p.dim) != p.value) ok = false;
      }
      any = ok;
    }
    EXPECT_TRUE(any) << q.ToString();
  }
}

TEST(QueryGenTest, SkewControlsWeightRatio) {
  SyntheticSpec dspec;
  dspec.num_rows = 10;
  dspec.num_rank_dims = 3;
  Table t = GenerateSynthetic(dspec);
  Rng rng(5);
  auto f = MakeRankingFunction(t, QueryFunctionKind::kLinear, 3, 4.0, &rng);
  auto lin = dynamic_cast<const LinearFunction*>(f.get());
  ASSERT_NE(lin, nullptr);
  double mn = 1e9, mx = 0;
  for (double w : lin->weights()) {
    if (w == 0) continue;
    mn = std::min(mn, w);
    mx = std::max(mx, w);
  }
  EXPECT_NEAR(mx / mn, 4.0, 1e-9);
}

}  // namespace
}  // namespace rankcube
