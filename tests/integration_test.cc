// Cross-module integration and property tests: engines must agree with each
// other and with oracles across data distributions, function shapes and
// query skews; materialization options must change cost, never results.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "core/grid_cube.h"
#include "core/ranking_fragments.h"
#include "core/signature_cube.h"
#include "gen/covtype.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "join/spjr_system.h"
#include "reference.h"

namespace rankcube {
namespace {

TEST(TopKHeapTest, KeepsKSmallest) {
  TopKHeap heap(3);
  for (int i = 10; i > 0; --i) heap.Offer(i, i * 1.0);
  auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0].score, 1.0);
  EXPECT_DOUBLE_EQ(sorted[2].score, 3.0);
  EXPECT_DOUBLE_EQ(heap.KthScore(), 3.0);
}

TEST(TopKHeapTest, KthScoreInfUntilFull) {
  TopKHeap heap(2);
  EXPECT_EQ(heap.KthScore(), kInfScore);
  heap.Offer(1, 5.0);
  EXPECT_EQ(heap.KthScore(), kInfScore);
  heap.Offer(2, 3.0);
  EXPECT_DOUBLE_EQ(heap.KthScore(), 5.0);
}

TEST(ExecStatsTest, MergeMaxTracksPeak) {
  ExecStats s;
  s.MergeMax(5);
  s.MergeMax(3);
  s.MergeMax(9);
  EXPECT_EQ(s.peak_heap, 9u);
}

TEST(IoSessionTest, StatsStringListsNonZeroCategories) {
  PageStore store;
  IoSession io{&store};
  io.Access(IoCategory::kRTree, 1);
  std::string s = io.StatsString();
  EXPECT_NE(s.find("rtree=1/1"), std::string::npos);
  EXPECT_EQ(s.find("btree"), std::string::npos);
}

// Engines agree across distributions x function kinds x skew.
struct EngineSweepParam {
  RankDistribution dist;
  QueryFunctionKind kind;
};

class EngineAgreementTest
    : public ::testing::TestWithParam<EngineSweepParam> {};

TEST_P(EngineAgreementTest, GridAndSignatureAgreeWithOracle) {
  SyntheticSpec spec;
  spec.num_rows = 4000;
  spec.num_sel_dims = 3;
  spec.cardinality = 8;
  spec.num_rank_dims = 2;
  spec.distribution = GetParam().dist;
  spec.seed = 101;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  GridRankingCube grid(t, io);
  SignatureCube sig(t, io);

  QueryWorkloadSpec qs;
  qs.num_queries = 10;
  qs.kind = GetParam().kind;
  qs.skew = 3.0;
  for (const auto& q : GenerateQueries(t, qs)) {
    auto oracle = ScoresOf(BruteForceTopK(t, q));
    ExecStats s1, s2;
    auto g = grid.TopK(q, &io, &s1);
    auto s = sig.TopK(q, &io, &s2);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(ScoresOf(*g), oracle) << q.ToString();
    EXPECT_EQ(ScoresOf(*s), oracle) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineAgreementTest,
    ::testing::Values(
        EngineSweepParam{RankDistribution::kUniform,
                         QueryFunctionKind::kLinear},
        EngineSweepParam{RankDistribution::kCorrelated,
                         QueryFunctionKind::kLinear},
        EngineSweepParam{RankDistribution::kAntiCorrelated,
                         QueryFunctionKind::kLinear},
        EngineSweepParam{RankDistribution::kUniform,
                         QueryFunctionKind::kDistance},
        EngineSweepParam{RankDistribution::kAntiCorrelated,
                         QueryFunctionKind::kDistance}));

TEST(SignatureCubeTest, MaterializedMultiDimCuboidGivesSameAnswers) {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  spec.num_sel_dims = 3;
  spec.cardinality = 10;
  spec.num_rank_dims = 2;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SignatureCube atomic(t, io);  // atomic cuboids only
  SignatureCubeOptions opt;
  opt.cuboid_dim_sets = {{0}, {1}, {2}, {0, 1}};  // + one 2-d cuboid
  SignatureCube multi(t, io, opt);

  QueryWorkloadSpec qs;
  qs.num_queries = 12;
  qs.num_predicates = 2;
  for (const auto& q : GenerateQueries(t, qs)) {
    ExecStats s1, s2;
    auto a = atomic.TopK(q, &io, &s1);
    auto m = multi.TopK(q, &io, &s2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(ScoresOf(*a), ScoresOf(*m)) << q.ToString();
  }
}

TEST(SignatureCubeTest, ExactCuboidPrunesNoWorseThanAssembled) {
  // A materialized (0,1) cuboid cell has no cross-dimension false
  // positives, so its search can only touch fewer or equal R-tree pages.
  SyntheticSpec spec;
  spec.num_rows = 20000;
  spec.num_sel_dims = 2;
  spec.cardinality = 10;
  spec.num_rank_dims = 2;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SignatureCube atomic(t, io,
                       SignatureCubeOptions{.cuboid_dim_sets = {{0}, {1}}});
  SignatureCube exact(t, io,
                      SignatureCubeOptions{.cuboid_dim_sets = {{0, 1}}});
  TopKQuery q;
  q.predicates = {{0, t.sel(0, 0)}, {1, t.sel(0, 1)}};
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 1});
  q.k = 20;
  io.ResetStats();
  ExecStats s1;
  auto r1 = atomic.TopK(q, &io, &s1);
  uint64_t atomic_rtree = io.stats(IoCategory::kRTree).physical;
  io.ResetStats();
  ExecStats s2;
  auto r2 = exact.TopK(q, &io, &s2);
  uint64_t exact_rtree = io.stats(IoCategory::kRTree).physical;
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(ScoresOf(*r1), ScoresOf(*r2));
  EXPECT_LE(exact_rtree, atomic_rtree);
}

TEST(CovtypeIntegrationTest, FragmentsAnswerCovtypeQueries) {
  CovtypeSpec spec;
  spec.base_rows = 3000;
  Table t = GenerateCovtypeLike(spec);
  PageStore store;
  IoSession io{&store};
  RankingFragments frags(t, io, {.block_size = 300, .fragment_size = 3});
  QueryWorkloadSpec qs;
  qs.num_queries = 8;
  qs.num_predicates = 3;
  qs.num_rank_used = 3;
  for (const auto& q : GenerateQueries(t, qs)) {
    ExecStats stats;
    auto res = frags.TopK(q, &io, &stats);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(ScoresOf(*res), ScoresOf(BruteForceTopK(t, q))) << q.ToString();
  }
}

TEST(SpjrSystemTest, ArityMismatchRejected) {
  SyntheticSpec spec;
  spec.num_rows = 100;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SpjrSystem sys(store);
  sys.AddRelation(t);
  SpjrQuery q;  // zero relations vs one registered
  ExecStats stats;
  EXPECT_FALSE(sys.TopK(q, &io, &stats).ok());
  EXPECT_FALSE(sys.BaselineTopK(q, &io, &stats).ok());
}

TEST(SpjrSystemTest, MissingFunctionRejected) {
  SyntheticSpec spec;
  spec.num_rows = 100;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  SpjrSystem sys(store);
  sys.AddRelation(t);
  SpjrQuery q;
  q.relations.resize(1);  // function left null
  ExecStats stats;
  auto res = sys.TopK(q, &io, &stats);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), Status::Code::kInvalidArgument);
}

TEST(OptimizerTest, ExplainStringIsInformative) {
  SyntheticSpec spec;
  spec.num_rows = 10000;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  PostingIndex posting(t);
  AccessPlan plan = ChooseAccessPath(t, posting, {{0, 1}}, 10, store);
  EXPECT_NE(plan.explain.find("est_matches"), std::string::npos);
  EXPECT_NE(plan.explain.find("->"), std::string::npos);
}

TEST(GridCubeTest, ConstructionTimeAndSizeReported) {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  Table t = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  GridRankingCube cube(t, io);
  EXPECT_GT(cube.construction_ms(), 0.0);
  EXPECT_GT(cube.SizeBytes(), t.num_rows() * 8);  // at least the tid lists
}

TEST(QueryToStringTest, ReadableForms) {
  TopKQuery q;
  q.predicates = {{0, 3}};
  q.function = std::make_shared<LinearFunction>(std::vector<double>{1, 2});
  q.k = 7;
  std::string s = q.ToString();
  EXPECT_NE(s.find("top-7"), std::string::npos);
  EXPECT_NE(s.find("A0=3"), std::string::npos);
  EXPECT_NE(s.find("linear"), std::string::npos);
  TopKQuery empty;
  empty.k = 1;
  EXPECT_NE(empty.ToString().find("true"), std::string::npos);
}

}  // namespace
}  // namespace rankcube
