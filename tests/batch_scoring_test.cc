// Batch-vs-scalar parity: EvaluateBatch must be bit-identical to per-tuple
// Evaluate for every RankingFunction class (the column-direct overrides and
// the default), and OfferBatch must produce exactly the same top-k as
// repeated Offer. These are the invariants that let every Execute path run
// on the batch API without changing a single reported score.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/topk_query.h"
#include "func/ranking_function.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

constexpr int kRankDims = 4;

Table MakeTable(uint64_t seed) {
  SyntheticSpec spec;
  spec.num_rows = 3000;
  spec.num_sel_dims = 2;
  spec.cardinality = 4;
  spec.num_rank_dims = kRankDims;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

std::vector<double> RandomWeights(Rng* rng, bool allow_negative) {
  std::vector<double> w(kRankDims);
  for (double& v : w) {
    v = rng->Uniform(allow_negative ? -2.0 : 0.1, 2.0);
    if (std::abs(v) < 0.05) v = 0.0;  // exercise uninvolved dims
  }
  // At least one involved dimension.
  if (std::all_of(w.begin(), w.end(), [](double v) { return v == 0.0; })) {
    w[0] = 1.0;
  }
  return w;
}

std::vector<double> RandomTargets(Rng* rng) {
  std::vector<double> t(kRankDims);
  for (double& v : t) v = rng->Uniform01();
  return t;
}

/// Every tid once, in a scrambled order, plus some duplicates — batch
/// callers do not guarantee sorted or unique tids.
std::vector<Tid> ScrambledTids(const Table& table, Rng* rng) {
  std::vector<Tid> tids(table.num_rows());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) tids[t] = t;
  for (size_t i = tids.size() - 1; i > 0; --i) {
    std::swap(tids[i], tids[rng->UniformInt(i + 1)]);
  }
  for (int i = 0; i < 32; ++i) {
    tids.push_back(static_cast<Tid>(rng->UniformInt(table.num_rows())));
  }
  return tids;
}

/// Asserts EvaluateBatch == per-tuple Evaluate, bitwise (+inf included).
void ExpectBatchParity(const RankingFunction& f, const Table& table,
                       const std::vector<Tid>& tids) {
  std::vector<double> batch(tids.size());
  f.EvaluateBatch(table, tids.data(), tids.size(), batch.data());

  std::vector<double> point(table.num_rank_dims());
  for (size_t i = 0; i < tids.size(); ++i) {
    table.CopyRankRow(tids[i], point.data());
    const double scalar = f.Evaluate(point.data());
    // Bit-identical, not just close: engines report these scores and the
    // parity tests compare them with ==. EXPECT_EQ handles +-inf.
    EXPECT_EQ(scalar, batch[i])
        << f.ToString() << " diverges at tid " << tids[i];
    EXPECT_FALSE(std::isnan(batch[i])) << f.ToString();
  }
}

TEST(EvaluateBatchParityTest, AllFunctionClassesRandomized) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Table table = MakeTable(seed);
    Rng rng(1000 + seed);
    std::vector<Tid> tids = ScrambledTids(table, &rng);

    std::vector<std::shared_ptr<const RankingFunction>> funcs;
    funcs.push_back(
        std::make_shared<LinearFunction>(RandomWeights(&rng, true)));
    funcs.push_back(std::make_shared<QuadraticDistance>(
        RandomWeights(&rng, false), RandomTargets(&rng)));
    funcs.push_back(std::make_shared<L1Distance>(RandomWeights(&rng, false),
                                                 RandomTargets(&rng)));
    funcs.push_back(
        std::make_shared<SquaredLinear>(RandomWeights(&rng, true)));
    funcs.push_back(std::make_shared<GeneralAB>(kRankDims, 0, 1));
    // A tight constraint band so plenty of tuples score +inf.
    funcs.push_back(
        std::make_shared<ConstrainedSum>(kRankDims, 0, 1, 0.4, 0.6));

    for (const auto& f : funcs) ExpectBatchParity(*f, table, tids);
  }
}

TEST(EvaluateBatchParityTest, ConstrainedSumInfinityHandling) {
  Table table = MakeTable(7);
  ConstrainedSum f(kRankDims, 0, 1, 0.25, 0.75);
  std::vector<Tid> tids(table.num_rows());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) tids[t] = t;
  std::vector<double> batch(tids.size());
  f.EvaluateBatch(table, tids.data(), tids.size(), batch.data());
  size_t inf_count = 0;
  for (double s : batch) {
    ASSERT_FALSE(std::isnan(s));
    if (s == kInfScore) ++inf_count;
  }
  // The band covers half the domain, so both branches must occur.
  EXPECT_GT(inf_count, 0u);
  EXPECT_LT(inf_count, batch.size());
}

TEST(EvaluateBatchParityTest, EmptyAndSingletonBlocks) {
  Table table = MakeTable(11);
  LinearFunction f({1.0, 0.5, 0.0, 0.0});
  f.EvaluateBatch(table, nullptr, 0, nullptr);  // must be a no-op
  Tid tid = 42;
  double out = -1.0;
  f.EvaluateBatch(table, &tid, 1, &out);
  std::vector<double> point(kRankDims);
  table.CopyRankRow(tid, point.data());
  EXPECT_EQ(out, f.Evaluate(point.data()));
}

TEST(OfferBatchParityTest, MatchesRepeatedOffer) {
  Rng rng(99);
  for (int k : {1, 5, 64}) {
    TopKHeap batched(k);
    TopKHeap scalar(k);
    // Several blocks, including scores worse than the running bound and
    // +inf scores, delivered identically to both heaps.
    for (int block = 0; block < 20; ++block) {
      std::vector<Tid> tids;
      std::vector<double> scores;
      for (int i = 0; i < 50; ++i) {
        tids.push_back(static_cast<Tid>(rng.UniformInt(100000)));
        double s = rng.Uniform(-1.0, 1.0);
        if (rng.UniformInt(20) == 0) s = kInfScore;
        scores.push_back(s);
      }
      batched.OfferBatch(tids.data(), scores.data(), tids.size());
      for (size_t i = 0; i < tids.size(); ++i) {
        scalar.Offer(tids[i], scores[i]);
      }
      EXPECT_EQ(batched.KthScore(), scalar.KthScore());
    }
    EXPECT_EQ(batched.Sorted(), scalar.Sorted());
  }
}

TEST(OfferBatchParityTest, AllWorseThanBoundLeavesHeapUntouched) {
  TopKHeap heap(2);
  const Tid tids[] = {1, 2, 3, 4};
  const double good[] = {0.1, 0.2, 0.3, 0.4};
  heap.OfferBatch(tids, good, 4);
  ASSERT_EQ(heap.KthScore(), 0.2);
  const double worse[] = {0.9, 0.8, 0.7, 0.2};  // 0.2 ties, not better
  heap.OfferBatch(tids, worse, 4);
  EXPECT_EQ(heap.KthScore(), 0.2);
  auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].tid, 1u);
  EXPECT_EQ(sorted[1].tid, 2u);
}

}  // namespace
}  // namespace rankcube
