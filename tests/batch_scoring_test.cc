// Batch-vs-scalar parity: EvaluateBatch must be bit-identical to per-tuple
// Evaluate for every RankingFunction class (the column-direct overrides and
// the default), and OfferBatch must produce exactly the same top-k as
// repeated Offer. These are the invariants that let every Execute path run
// on the batch API without changing a single reported score.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/topk_query.h"
#include "func/kernels/kernels.h"
#include "func/ranking_function.h"
#include "func/score_expr.h"
#include "gen/synthetic.h"

namespace rankcube {
namespace {

constexpr int kRankDims = 4;

Table MakeTable(uint64_t seed) {
  SyntheticSpec spec;
  spec.num_rows = 3000;
  spec.num_sel_dims = 2;
  spec.cardinality = 4;
  spec.num_rank_dims = kRankDims;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

std::vector<double> RandomWeights(Rng* rng, bool allow_negative) {
  std::vector<double> w(kRankDims);
  for (double& v : w) {
    v = rng->Uniform(allow_negative ? -2.0 : 0.1, 2.0);
    if (std::abs(v) < 0.05) v = 0.0;  // exercise uninvolved dims
  }
  // At least one involved dimension.
  if (std::all_of(w.begin(), w.end(), [](double v) { return v == 0.0; })) {
    w[0] = 1.0;
  }
  return w;
}

std::vector<double> RandomTargets(Rng* rng) {
  std::vector<double> t(kRankDims);
  for (double& v : t) v = rng->Uniform01();
  return t;
}

/// Every tid once, in a scrambled order, plus some duplicates — batch
/// callers do not guarantee sorted or unique tids.
std::vector<Tid> ScrambledTids(const Table& table, Rng* rng) {
  std::vector<Tid> tids(table.num_rows());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) tids[t] = t;
  for (size_t i = tids.size() - 1; i > 0; --i) {
    std::swap(tids[i], tids[rng->UniformInt(i + 1)]);
  }
  for (int i = 0; i < 32; ++i) {
    tids.push_back(static_cast<Tid>(rng->UniformInt(table.num_rows())));
  }
  return tids;
}

/// Asserts EvaluateBatch == per-tuple Evaluate, bitwise (+inf included).
void ExpectBatchParity(const RankingFunction& f, const Table& table,
                       const std::vector<Tid>& tids) {
  std::vector<double> batch(tids.size());
  f.EvaluateBatch(table, tids.data(), tids.size(), batch.data());

  std::vector<double> point(table.num_rank_dims());
  for (size_t i = 0; i < tids.size(); ++i) {
    table.CopyRankRow(tids[i], point.data());
    const double scalar = f.Evaluate(point.data());
    // Bit-identical, not just close: engines report these scores and the
    // parity tests compare them with ==. EXPECT_EQ handles +-inf.
    EXPECT_EQ(scalar, batch[i])
        << f.ToString() << " diverges at tid " << tids[i];
    EXPECT_FALSE(std::isnan(batch[i])) << f.ToString();
  }
}

TEST(EvaluateBatchParityTest, AllFunctionClassesRandomized) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Table table = MakeTable(seed);
    Rng rng(1000 + seed);
    std::vector<Tid> tids = ScrambledTids(table, &rng);

    std::vector<std::shared_ptr<const RankingFunction>> funcs;
    funcs.push_back(
        std::make_shared<LinearFunction>(RandomWeights(&rng, true)));
    funcs.push_back(std::make_shared<QuadraticDistance>(
        RandomWeights(&rng, false), RandomTargets(&rng)));
    funcs.push_back(std::make_shared<L1Distance>(RandomWeights(&rng, false),
                                                 RandomTargets(&rng)));
    funcs.push_back(
        std::make_shared<SquaredLinear>(RandomWeights(&rng, true)));
    funcs.push_back(std::make_shared<GeneralAB>(kRankDims, 0, 1));
    // A tight constraint band so plenty of tuples score +inf.
    funcs.push_back(
        std::make_shared<ConstrainedSum>(kRankDims, 0, 1, 0.4, 0.6));

    for (const auto& f : funcs) ExpectBatchParity(*f, table, tids);
  }
}

TEST(EvaluateBatchParityTest, ConstrainedSumInfinityHandling) {
  Table table = MakeTable(7);
  ConstrainedSum f(kRankDims, 0, 1, 0.25, 0.75);
  std::vector<Tid> tids(table.num_rows());
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) tids[t] = t;
  std::vector<double> batch(tids.size());
  f.EvaluateBatch(table, tids.data(), tids.size(), batch.data());
  size_t inf_count = 0;
  for (double s : batch) {
    ASSERT_FALSE(std::isnan(s));
    if (s == kInfScore) ++inf_count;
  }
  // The band covers half the domain, so both branches must occur.
  EXPECT_GT(inf_count, 0u);
  EXPECT_LT(inf_count, batch.size());
}

TEST(EvaluateBatchParityTest, EmptyAndSingletonBlocks) {
  Table table = MakeTable(11);
  LinearFunction f({1.0, 0.5, 0.0, 0.0});
  f.EvaluateBatch(table, nullptr, 0, nullptr);  // must be a no-op
  Tid tid = 42;
  double out = -1.0;
  f.EvaluateBatch(table, &tid, 1, &out);
  std::vector<double> point(kRankDims);
  table.CopyRankRow(tid, point.data());
  EXPECT_EQ(out, f.Evaluate(point.data()));
}

TEST(OfferBatchParityTest, MatchesRepeatedOffer) {
  Rng rng(99);
  for (int k : {1, 5, 64}) {
    TopKHeap batched(k);
    TopKHeap scalar(k);
    // Several blocks, including scores worse than the running bound and
    // +inf scores, delivered identically to both heaps.
    for (int block = 0; block < 20; ++block) {
      std::vector<Tid> tids;
      std::vector<double> scores;
      for (int i = 0; i < 50; ++i) {
        tids.push_back(static_cast<Tid>(rng.UniformInt(100000)));
        double s = rng.Uniform(-1.0, 1.0);
        if (rng.UniformInt(20) == 0) s = kInfScore;
        scores.push_back(s);
      }
      batched.OfferBatch(tids.data(), scores.data(), tids.size());
      for (size_t i = 0; i < tids.size(); ++i) {
        scalar.Offer(tids[i], scores[i]);
      }
      EXPECT_EQ(batched.KthScore(), scalar.KthScore());
    }
    EXPECT_EQ(batched.Sorted(), scalar.Sorted());
  }
}

/// The six built-in function classes with randomized parameters: the full
/// set of kernel-specializable shapes.
std::vector<std::shared_ptr<const RankingFunction>> AllShapeFunctions(
    Rng* rng) {
  std::vector<std::shared_ptr<const RankingFunction>> funcs;
  funcs.push_back(std::make_shared<LinearFunction>(RandomWeights(rng, true)));
  funcs.push_back(std::make_shared<QuadraticDistance>(
      RandomWeights(rng, false), RandomTargets(rng)));
  funcs.push_back(std::make_shared<L1Distance>(RandomWeights(rng, false),
                                               RandomTargets(rng)));
  funcs.push_back(std::make_shared<SquaredLinear>(RandomWeights(rng, true)));
  funcs.push_back(std::make_shared<GeneralAB>(kRankDims, 0, 1));
  funcs.push_back(
      std::make_shared<ConstrainedSum>(kRankDims, 0, 1, 0.4, 0.6));
  return funcs;
}

/// Scalar oracle: per-tuple Evaluate over the table's rank rows.
std::vector<double> ScalarOracle(const RankingFunction& f, const Table& table,
                                 const std::vector<Tid>& tids) {
  std::vector<double> out(tids.size());
  std::vector<double> point(table.num_rank_dims());
  for (size_t i = 0; i < tids.size(); ++i) {
    table.CopyRankRow(tids[i], point.data());
    out[i] = f.Evaluate(point.data());
  }
  return out;
}

TEST(FusedKernelParityTest, IndexedAndDenseMatchScalarOracle) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Table table = MakeTable(seed);
    Rng rng(2000 + seed);
    std::vector<Tid> scrambled = ScrambledTids(table, &rng);
    std::vector<Tid> consecutive(table.num_rows());
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      consecutive[t] = t;
    }

    for (const auto& f : AllShapeFunctions(&rng)) {
      ScoreExprPtr expr = f->Expr();
      ASSERT_NE(expr, nullptr) << f->ToString();
      ExprPlan plan = ClassifyExpr(*expr);
      ASSERT_NE(plan.shape, FuncShape::kGeneric)
          << f->ToString() << " tree did not classify: "
          << expr->ToString();
      kernels::BoundPlan bound;
      ASSERT_TRUE(kernels::Bind(plan, table, &bound)) << f->ToString();
      kernels::Kernel kernel = kernels::Resolve(bound);
      ASSERT_NE(kernel.indexed, nullptr) << f->ToString();
      ASSERT_NE(kernel.dense, nullptr) << f->ToString();

      // Indexed loop on an arbitrary (scrambled, duplicated) tid stream.
      std::vector<double> expect = ScalarOracle(*f, table, scrambled);
      std::vector<double> got(scrambled.size());
      kernel.indexed(bound, scrambled.data(), scrambled.size(), got.data());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(expect[i], got[i])
            << f->ToString() << " indexed kernel diverges at tid "
            << scrambled[i];
      }

      // Dense loop on the consecutive run, plus RunKernel's dispatch to it.
      expect = ScalarOracle(*f, table, consecutive);
      got.assign(consecutive.size(), -1.0);
      kernel.dense(bound, 0, consecutive.size(), got.data());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(expect[i], got[i])
            << f->ToString() << " dense kernel diverges at tid " << i;
      }
      std::vector<double> via_dispatch(consecutive.size(), -1.0);
      kernels::RunKernel(kernel, bound, consecutive.data(),
                         consecutive.size(), via_dispatch.data());
      EXPECT_EQ(got, via_dispatch) << f->ToString();
    }
  }
}

TEST(FusedKernelParityTest, ConsecutiveRunDetection) {
  std::vector<Tid> run = {5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_TRUE(kernels::IsConsecutiveRun(run.data(), run.size()));
  Tid one = 42;
  EXPECT_TRUE(kernels::IsConsecutiveRun(&one, 1));
  std::vector<Tid> broken = run;
  broken[5] = 99;
  EXPECT_FALSE(kernels::IsConsecutiveRun(broken.data(), broken.size()));
  std::vector<Tid> reversed(run.rbegin(), run.rend());
  EXPECT_FALSE(kernels::IsConsecutiveRun(reversed.data(), reversed.size()));
  std::vector<Tid> dup = {3, 3, 4, 5};
  EXPECT_FALSE(kernels::IsConsecutiveRun(dup.data(), dup.size()));
}

TEST(FusedScorerTest, PredicatesMatchScalarFilterLoop) {
  Table table = MakeTable(5);
  Rng rng(77);
  std::vector<Predicate> preds = {{0, 1}, {1, 2}};
  for (const auto& f : AllShapeFunctions(&rng)) {
    TopKHeap fused_heap(10);
    ExecStats fused_stats;
    kernels::FusedScorer scorer(table, *f, preds, &fused_heap, &fused_stats);
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      scorer.Add(t);
    }
    scorer.Flush();

    TopKHeap scalar_heap(10);
    uint64_t survivors = 0;
    std::vector<double> point(kRankDims);
    for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) {
      bool ok = true;
      for (const auto& p : preds) {
        if (table.sel(t, p.dim) != p.value) ok = false;
      }
      if (!ok) continue;
      ++survivors;
      table.CopyRankRow(t, point.data());
      scalar_heap.Offer(t, f->Evaluate(point.data()));
    }

    EXPECT_EQ(fused_heap.Sorted(), scalar_heap.Sorted()) << f->ToString();
    EXPECT_EQ(fused_stats.tuples_evaluated, survivors) << f->ToString();
  }
}

TEST(FusedScorerTest, EmptyAndAllFilteredBlocks) {
  Table table = MakeTable(9);
  LinearFunction f({1.0, 0.25, 0.0, 0.5});
  // Contradictory predicates: no tuple can satisfy A0=0 and A0=1.
  std::vector<Predicate> preds = {{0, 0}, {0, 1}};
  TopKHeap topk(5);
  ExecStats stats;
  kernels::FusedScorer scorer(table, f, preds, &topk, &stats);
  scorer.ScoreBlock(nullptr, 0);  // empty block: no-op
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) scorer.Add(t);
  scorer.Flush();
  EXPECT_TRUE(topk.Sorted().empty());
  EXPECT_EQ(stats.tuples_evaluated, 0u);
}

TEST(FusedScorerTest, BlockExactlyAtThresholdLeavesHeapUntouched) {
  Table table = MakeTable(13);
  LinearFunction f({0.5, 0.5, 0.25, 0.25});
  TopKHeap topk(10);
  ExecStats stats;
  kernels::FusedScorer scorer(table, f, &topk, &stats);
  for (Tid t = 0; t < static_cast<Tid>(table.num_rows()); ++t) scorer.Add(t);
  scorer.Flush();
  auto before = topk.Sorted();
  const double sk = topk.KthScore();
  ASSERT_EQ(before.back().score, sk);
  // A block scoring exactly S_k throughout: the threshold test is strict
  // (score < S_k), so ties must not displace or duplicate the incumbent.
  std::vector<Tid> at_threshold(64, before.back().tid);
  scorer.ScoreBlock(at_threshold.data(), at_threshold.size());
  EXPECT_EQ(topk.Sorted(), before);
  EXPECT_EQ(topk.KthScore(), sk);
}

TEST(FusedScorerTest, DropInfCompactsConstrainedTuples) {
  Table table = MakeTable(17);
  ConstrainedSum f(kRankDims, 0, 1, 0.4, 0.6);
  const Tid n = static_cast<Tid>(table.num_rows());
  TopKHeap drop_heap(static_cast<int>(n));
  ExecStats stats;
  kernels::FusedScorer scorer(table, f, &drop_heap, &stats,
                              {.drop_inf = true});
  for (Tid t = 0; t < n; ++t) scorer.Add(t);
  scorer.Flush();
  // With k = num_rows and drop_inf, the heap holds exactly the in-band
  // tuples: no +inf score may survive the compaction.
  std::vector<double> expect = ScalarOracle(
      f, table, [n] {
        std::vector<Tid> all(n);
        for (Tid t = 0; t < n; ++t) all[t] = t;
        return all;
      }());
  size_t finite = 0;
  for (double s : expect) finite += (s < kInfScore);
  auto sorted = drop_heap.Sorted();
  ASSERT_EQ(sorted.size(), finite);
  for (const auto& st : sorted) EXPECT_LT(st.score, kInfScore);
}

TEST(ExprRoundTripTest, LegacyFunctionsRoundTripThroughExprFunction) {
  Table table = MakeTable(21);
  Rng rng(555);
  std::vector<Tid> tids = ScrambledTids(table, &rng);
  const FuncShape expected_shapes[] = {
      FuncShape::kLinear,        FuncShape::kQuadratic,
      FuncShape::kL1,            FuncShape::kSquaredLinear,
      FuncShape::kGeneralAB,     FuncShape::kConstrainedSum,
  };
  auto funcs = AllShapeFunctions(&rng);
  ASSERT_EQ(funcs.size(), std::size(expected_shapes));
  for (size_t fi = 0; fi < funcs.size(); ++fi) {
    const RankingFunction& legacy = *funcs[fi];
    ExprFunction roundtrip(kRankDims, legacy.Expr());
    EXPECT_EQ(roundtrip.plan().shape, expected_shapes[fi])
        << legacy.ToString();
    EXPECT_EQ(roundtrip.involved_dims(), legacy.involved_dims())
        << legacy.ToString();
    EXPECT_EQ(roundtrip.convex(), legacy.convex()) << legacy.ToString();
    // The tree may derive *more* metadata than the legacy class (e.g. a
    // squared-linear with all-positive weights is structurally monotone);
    // whatever the legacy class claims, the round-trip must agree with.
    if (auto legacy_mono = legacy.MonotoneDirections()) {
      EXPECT_EQ(roundtrip.MonotoneDirections(), legacy_mono)
          << legacy.ToString();
    }

    // Tree evaluation, scalar evaluation, and both batch paths all agree.
    std::vector<double> expect = ScalarOracle(legacy, table, tids);
    std::vector<double> got(tids.size());
    roundtrip.EvaluateBatch(table, tids.data(), tids.size(), got.data());
    for (size_t i = 0; i < tids.size(); ++i) {
      ASSERT_EQ(expect[i], got[i])
          << legacy.ToString() << " round-trip diverges at tid " << tids[i];
    }
    // Interval lower bounds stay valid bounds under the tree.
    Box unit = Box::Unit(kRankDims);
    const double lb = roundtrip.LowerBound(unit);
    for (double s : expect) ASSERT_GE(s, lb) << legacy.ToString();
  }
}

TEST(ExprRoundTripTest, UserDefinedTreeExecutesGenerically) {
  Table table = MakeTable(23);
  // Mul(Var0, Var1): monotone over [0,1]^2 but matching no kernel shape.
  ScoreExprPtr tree =
      ScoreExpr::Mul({ScoreExpr::Var(0), ScoreExpr::Var(1)});
  ExprFunction f(kRankDims, tree, "product");
  EXPECT_EQ(f.plan().shape, FuncShape::kGeneric);
  kernels::BlockEvaluator eval(table, f);
  EXPECT_FALSE(eval.fused());

  std::vector<Tid> tids = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> got(tids.size());
  eval.Score(tids.data(), tids.size(), got.data());
  for (size_t i = 0; i < tids.size(); ++i) {
    EXPECT_EQ(got[i], table.rank(tids[i], 0) * table.rank(tids[i], 1));
  }
  // Structural metadata: the product of two nonnegative dims is
  // non-decreasing in both (one entry per involved dimension).
  EXPECT_EQ(f.involved_dims(), (std::vector<int>{0, 1}));
  auto mono = f.MonotoneDirections();
  ASSERT_TRUE(mono.has_value());
  EXPECT_EQ(*mono, (std::vector<int>{1, 1}));
}

TEST(ExprRoundTripTest, KernelKillSwitchIsBitIdentical) {
  Table table = MakeTable(29);
  Rng rng(888);
  std::vector<Tid> tids = ScrambledTids(table, &rng);
  for (const auto& f : AllShapeFunctions(&rng)) {
    ASSERT_EQ(setenv("RANKCUBE_FUSED_KERNELS", "0", 1), 0);
    kernels::BlockEvaluator off(table, *f);
    EXPECT_FALSE(off.fused()) << f->ToString();
    std::vector<double> off_scores(tids.size());
    off.Score(tids.data(), tids.size(), off_scores.data());
    ASSERT_EQ(unsetenv("RANKCUBE_FUSED_KERNELS"), 0);

    kernels::BlockEvaluator on(table, *f);
    EXPECT_TRUE(on.fused()) << f->ToString();
    std::vector<double> on_scores(tids.size());
    on.Score(tids.data(), tids.size(), on_scores.data());
    EXPECT_EQ(off_scores, on_scores) << f->ToString();
  }
}

TEST(OfferBatchParityTest, AllWorseThanBoundLeavesHeapUntouched) {
  TopKHeap heap(2);
  const Tid tids[] = {1, 2, 3, 4};
  const double good[] = {0.1, 0.2, 0.3, 0.4};
  heap.OfferBatch(tids, good, 4);
  ASSERT_EQ(heap.KthScore(), 0.2);
  const double worse[] = {0.9, 0.8, 0.7, 0.2};  // 0.2 ties, not better
  heap.OfferBatch(tids, worse, 4);
  EXPECT_EQ(heap.KthScore(), 0.2);
  auto sorted = heap.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].tid, 1u);
  EXPECT_EQ(sorted[1].tid, 2u);
}

}  // namespace
}  // namespace rankcube
