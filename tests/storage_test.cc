#include <gtest/gtest.h>

#include "storage/pager.h"
#include "storage/table.h"

namespace rankcube {
namespace {

TEST(PagerTest, CountsPerCategory) {
  Pager pager;
  pager.Access(IoCategory::kRTree, 1);
  pager.Access(IoCategory::kRTree, 2);
  pager.Access(IoCategory::kSignature, 9);
  EXPECT_EQ(pager.stats(IoCategory::kRTree).physical, 2u);
  EXPECT_EQ(pager.stats(IoCategory::kSignature).physical, 1u);
  EXPECT_EQ(pager.TotalPhysical(), 3u);
  pager.ResetStats();
  EXPECT_EQ(pager.TotalPhysical(), 0u);
}

TEST(PagerTest, CacheAbsorbsRepeatedReads) {
  Pager pager({.page_size = 4096, .cache_pages = 8});
  for (int i = 0; i < 5; ++i) pager.Access(IoCategory::kBTree, 42);
  EXPECT_EQ(pager.stats(IoCategory::kBTree).logical, 5u);
  EXPECT_EQ(pager.stats(IoCategory::kBTree).physical, 1u);
}

TEST(PagerTest, CacheEvictsLru) {
  Pager pager({.page_size = 4096, .cache_pages = 2});
  pager.Access(IoCategory::kBTree, 1);
  pager.Access(IoCategory::kBTree, 2);
  pager.Access(IoCategory::kBTree, 3);  // evicts 1
  pager.Access(IoCategory::kBTree, 1);  // miss again
  EXPECT_EQ(pager.stats(IoCategory::kBTree).physical, 4u);
}

TEST(PagerTest, MultiPageReadsBypassCache) {
  Pager pager({.page_size = 4096, .cache_pages = 8});
  pager.Access(IoCategory::kTable, 0, 10);
  pager.Access(IoCategory::kTable, 0, 10);
  EXPECT_EQ(pager.stats(IoCategory::kTable).physical, 20u);
}

TEST(PagerTest, CategoriesDoNotCollideInCache) {
  Pager pager({.page_size = 4096, .cache_pages = 8});
  pager.Access(IoCategory::kBTree, 7);
  pager.Access(IoCategory::kRTree, 7);
  EXPECT_EQ(pager.TotalPhysical(), 2u);
}

Table MakeTable() {
  TableSchema schema;
  schema.sel_cardinality = {4, 3};
  schema.num_rank_dims = 2;
  Table t(schema);
  EXPECT_TRUE(t.AddRow({1, 2}, {0.5, 0.25}).ok());
  EXPECT_TRUE(t.AddRow({3, 0}, {0.1, 0.9}).ok());
  return t;
}

TEST(TableTest, StoresValues) {
  Table t = MakeTable();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.sel(0, 0), 1);
  EXPECT_EQ(t.sel(1, 1), 0);
  EXPECT_DOUBLE_EQ(t.rank(0, 1), 0.25);
  EXPECT_EQ(t.RankRow(1), (std::vector<double>{0.1, 0.9}));
}

TEST(TableTest, RejectsBadRows) {
  Table t = MakeTable();
  EXPECT_FALSE(t.AddRow({1}, {0.0, 0.0}).ok());        // wrong sel arity
  EXPECT_FALSE(t.AddRow({1, 2}, {0.0}).ok());          // wrong rank arity
  EXPECT_FALSE(t.AddRow({9, 0}, {0.0, 0.0}).ok());     // out of domain
  EXPECT_FALSE(t.AddRow({-1, 0}, {0.0, 0.0}).ok());    // negative
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, PageAccounting) {
  Table t = MakeTable();
  Pager pager;
  // Row = 4 + 4*2 + 8*2 = 28 bytes -> 146 rows / 4KB page.
  EXPECT_EQ(t.RowBytes(), 28u);
  EXPECT_EQ(t.RowsPerPage(pager), 146u);
  EXPECT_EQ(t.NumPages(pager), 1u);
  t.ChargeFullScan(&pager);
  EXPECT_EQ(pager.stats(IoCategory::kTable).physical, 1u);
  t.ChargeRowFetch(&pager, 0);
  EXPECT_EQ(pager.stats(IoCategory::kTable).physical, 2u);
}

}  // namespace
}  // namespace rankcube
