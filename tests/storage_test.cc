#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "storage/io_session.h"
#include "storage/table.h"

namespace rankcube {
namespace {

TEST(IoSessionTest, CountsPerCategory) {
  PageStore store;
  IoSession io{&store};
  io.Access(IoCategory::kRTree, 1);
  io.Access(IoCategory::kRTree, 2);
  io.Access(IoCategory::kSignature, 9);
  EXPECT_EQ(io.stats(IoCategory::kRTree).physical, 2u);
  EXPECT_EQ(io.stats(IoCategory::kSignature).physical, 1u);
  EXPECT_EQ(io.TotalPhysical(), 3u);
  io.ResetStats();
  EXPECT_EQ(io.TotalPhysical(), 0u);
}

TEST(IoSessionTest, CacheAbsorbsRepeatedReads) {
  PageStore store({.page_size = 4096, .cache_pages = 8});
  IoSession io{&store};
  for (int i = 0; i < 5; ++i) io.Access(IoCategory::kBTree, 42);
  EXPECT_EQ(io.stats(IoCategory::kBTree).logical, 5u);
  EXPECT_EQ(io.stats(IoCategory::kBTree).physical, 1u);
  EXPECT_EQ(io.stats(IoCategory::kBTree).hits(), 4u);
}

TEST(IoSessionTest, CacheEvictsLru) {
  // One shard = the classic global LRU: eviction order is exactly
  // least-recently-used across all keys.
  PageStore store({.page_size = 4096, .cache_pages = 2, .cache_shards = 1});
  IoSession io{&store};
  io.Access(IoCategory::kBTree, 1);
  io.Access(IoCategory::kBTree, 2);
  io.Access(IoCategory::kBTree, 3);  // evicts 1
  io.Access(IoCategory::kBTree, 1);  // miss again, evicts 2
  EXPECT_EQ(io.stats(IoCategory::kBTree).physical, 4u);
  io.Access(IoCategory::kBTree, 3);  // still resident
  io.Access(IoCategory::kBTree, 1);  // still resident
  EXPECT_EQ(io.stats(IoCategory::kBTree).physical, 4u);
  EXPECT_EQ(io.stats(IoCategory::kBTree).hits(), 2u);
}

TEST(IoSessionTest, LruRefreshOnHit) {
  PageStore store({.page_size = 4096, .cache_pages = 2, .cache_shards = 1});
  IoSession io{&store};
  io.Access(IoCategory::kBTree, 1);
  io.Access(IoCategory::kBTree, 2);
  io.Access(IoCategory::kBTree, 1);  // hit: 1 becomes most recent
  io.Access(IoCategory::kBTree, 3);  // evicts 2, not 1
  io.Access(IoCategory::kBTree, 1);  // hit
  EXPECT_EQ(io.stats(IoCategory::kBTree).physical, 3u);
  EXPECT_EQ(io.stats(IoCategory::kBTree).hits(), 2u);
}

TEST(IoSessionTest, MultiPageReadsBypassCache) {
  PageStore store({.page_size = 4096, .cache_pages = 8});
  IoSession io{&store};
  io.Access(IoCategory::kTable, 0, 10);
  io.Access(IoCategory::kTable, 0, 10);
  EXPECT_EQ(io.stats(IoCategory::kTable).physical, 20u);
  EXPECT_EQ(io.stats(IoCategory::kTable).hits(), 0u);
}

TEST(IoSessionTest, CategoriesDoNotCollideInCache) {
  PageStore store({.page_size = 4096, .cache_pages = 8});
  IoSession io{&store};
  io.Access(IoCategory::kBTree, 7);
  io.Access(IoCategory::kRTree, 7);
  EXPECT_EQ(io.TotalPhysical(), 2u);
}

TEST(IoSessionTest, HitMissAccountingIsPerCategory) {
  PageStore store({.page_size = 4096, .cache_pages = 16});
  IoSession io{&store};
  io.Access(IoCategory::kBTree, 1);   // miss
  io.Access(IoCategory::kBTree, 1);   // hit
  io.Access(IoCategory::kCuboid, 5);  // miss
  io.Access(IoCategory::kCuboid, 5);  // hit
  io.Access(IoCategory::kCuboid, 5);  // hit
  EXPECT_EQ(io.stats(IoCategory::kBTree).logical, 2u);
  EXPECT_EQ(io.stats(IoCategory::kBTree).physical, 1u);
  EXPECT_EQ(io.stats(IoCategory::kBTree).hits(), 1u);
  EXPECT_EQ(io.stats(IoCategory::kCuboid).logical, 3u);
  EXPECT_EQ(io.stats(IoCategory::kCuboid).physical, 1u);
  EXPECT_EQ(io.stats(IoCategory::kCuboid).hits(), 2u);
  EXPECT_EQ(io.TotalLogical(), 5u);
  EXPECT_EQ(io.TotalPhysical(), 2u);
}

TEST(IoSessionTest, SessionsShareTheStoreCacheForDeviceReadsOnly) {
  // The shared cache decides *device* reads (b's second access of page 7 is
  // a device hit another session warmed). Charged `physical` pages are
  // metered per session, so b still pays for its own first touch — the
  // attribution that makes per-query budgets schedule-independent.
  PageStore store({.page_size = 4096, .cache_pages = 8});
  IoSession a{&store};
  IoSession b{&store};
  a.Access(IoCategory::kBTree, 7);  // miss everywhere, admits the page
  b.Access(IoCategory::kBTree, 7);  // device hit, charged miss
  EXPECT_EQ(a.stats(IoCategory::kBTree).physical, 1u);
  EXPECT_EQ(a.stats(IoCategory::kBTree).device, 1u);
  EXPECT_EQ(b.stats(IoCategory::kBTree).physical, 1u);
  EXPECT_EQ(b.stats(IoCategory::kBTree).device, 0u);
  EXPECT_EQ(b.stats(IoCategory::kBTree).device_hits(), 1u);

  b.Access(IoCategory::kBTree, 7);  // now a hit in b's own accounting cache
  EXPECT_EQ(b.stats(IoCategory::kBTree).physical, 1u);
  EXPECT_EQ(b.stats(IoCategory::kBTree).hits(), 1u);

  store.ClearCache();  // clears the shared cache, not session accounting
  b.Access(IoCategory::kBTree, 7);  // device-cold again, still charged-warm
  EXPECT_EQ(b.stats(IoCategory::kBTree).physical, 1u);
  EXPECT_EQ(b.stats(IoCategory::kBTree).device, 1u);
}

TEST(IoSessionTest, MergeFromAccumulates) {
  PageStore store;
  IoSession a{&store};
  IoSession b{&store};
  a.Access(IoCategory::kTable, 0, 3);
  b.Access(IoCategory::kTable, 1);
  b.Access(IoCategory::kRTree, 2);
  a.MergeFrom(b);
  EXPECT_EQ(a.stats(IoCategory::kTable).physical, 4u);
  EXPECT_EQ(a.stats(IoCategory::kRTree).physical, 1u);
  EXPECT_EQ(a.TotalPhysical(), 5u);
}

TEST(PageStoreTest, ConcurrentSessionsCountExactly) {
  // Many threads hammer one shared store, each through its own session;
  // session counters must be exact (logical is untouched by cache races)
  // and the run must be clean under ThreadSanitizer.
  PageStore store({.page_size = 4096, .cache_pages = 64, .cache_shards = 8});
  constexpr int kThreads = 8;
  constexpr int kAccesses = 2000;
  std::vector<IoSession> sessions(kThreads, IoSession(&store));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAccesses; ++i) {
        sessions[t].Access(IoCategory::kRTree,
                           static_cast<uint64_t>(i % 128));
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t logical = 0;
  for (const auto& s : sessions) logical += s.TotalLogical();
  EXPECT_EQ(logical, static_cast<uint64_t>(kThreads) * kAccesses);
  for (const auto& s : sessions) {
    EXPECT_LE(s.TotalPhysical(), s.TotalLogical());
  }
}

Table MakeTable() {
  TableSchema schema;
  schema.sel_cardinality = {4, 3};
  schema.num_rank_dims = 2;
  Table t(schema);
  EXPECT_TRUE(t.AddRow({1, 2}, {0.5, 0.25}).ok());
  EXPECT_TRUE(t.AddRow({3, 0}, {0.1, 0.9}).ok());
  return t;
}

TEST(TableTest, StoresValues) {
  Table t = MakeTable();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.sel(0, 0), 1);
  EXPECT_EQ(t.sel(1, 1), 0);
  EXPECT_DOUBLE_EQ(t.rank(0, 1), 0.25);
  std::vector<double> row(t.num_rank_dims());
  t.CopyRankRow(1, row.data());
  EXPECT_EQ(row, (std::vector<double>{0.1, 0.9}));
}

TEST(TableTest, RejectsBadRows) {
  Table t = MakeTable();
  EXPECT_FALSE(t.AddRow({1}, {0.0, 0.0}).ok());        // wrong sel arity
  EXPECT_FALSE(t.AddRow({1, 2}, {0.0}).ok());          // wrong rank arity
  EXPECT_FALSE(t.AddRow({9, 0}, {0.0, 0.0}).ok());     // out of domain
  EXPECT_FALSE(t.AddRow({-1, 0}, {0.0, 0.0}).ok());    // negative
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, RejectsRankOutsideUnitInterval) {
  Table t = MakeTable();
  EXPECT_EQ(t.AddRow({1, 2}, {1.5, 0.0}).code(), Status::Code::kOutOfRange);
  EXPECT_EQ(t.AddRow({1, 2}, {0.0, -0.1}).code(), Status::Code::kOutOfRange);
  double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(t.AddRow({1, 2}, {nan, 0.0}).code(), Status::Code::kOutOfRange);
  // The closed boundaries are legal.
  EXPECT_TRUE(t.AddRow({1, 2}, {0.0, 1.0}).ok());
}

TEST(TableTest, RejectedRowLeavesNoPartialAppend) {
  Table t = MakeTable();
  // Dimension 0 is valid, dimension 1 is out of domain: the row must be
  // rejected without leaking the already-validated column value.
  EXPECT_FALSE(t.AddRow({1, 99}, {0.0, 0.0}).ok());
  EXPECT_FALSE(t.AddRow({1, 2}, {0.5, 7.0}).ok());
  ASSERT_EQ(t.num_rows(), 2u);
  ASSERT_TRUE(t.AddRow({2, 1}, {0.25, 0.75}).ok());
  // A partial append would have shifted this row's column values.
  EXPECT_EQ(t.sel(2, 0), 2);
  EXPECT_EQ(t.sel(2, 1), 1);
  EXPECT_DOUBLE_EQ(t.rank(2, 0), 0.25);
}

TEST(TableTest, InsertDeleteAdvanceEpochAndLog) {
  Table t = MakeTable();
  EXPECT_EQ(t.epoch(), 0u);  // bulk load does not log
  auto tid = t.Insert({0, 0}, {0.3, 0.3});
  ASSERT_TRUE(tid.ok());
  EXPECT_EQ(tid.value(), 2u);
  EXPECT_EQ(t.epoch(), 1u);
  ASSERT_TRUE(t.Delete(0).ok());
  EXPECT_EQ(t.epoch(), 2u);
  EXPECT_FALSE(t.is_live(0));
  EXPECT_TRUE(t.is_live(1));
  EXPECT_EQ(t.num_rows(), 3u);   // tombstone stays in the heap
  EXPECT_EQ(t.num_live(), 2u);

  // Error paths: invalid insert is not logged; double delete and
  // out-of-range delete fail.
  EXPECT_FALSE(t.Insert({0, 0}, {2.0, 0.0}).ok());
  EXPECT_EQ(t.epoch(), 2u);
  EXPECT_EQ(t.Delete(0).code(), Status::Code::kNotFound);
  EXPECT_EQ(t.Delete(99).code(), Status::Code::kInvalidArgument);

  std::vector<Tid> ins, del;
  t.delta().ChangesSince(0, &ins, &del);
  EXPECT_EQ(ins, (std::vector<Tid>{2}));
  EXPECT_EQ(del, (std::vector<Tid>{0}));
  // Suffix after the insert: only the delete remains.
  t.delta().ChangesSince(1, &ins, &del);
  EXPECT_TRUE(ins.empty());
  EXPECT_EQ(del, (std::vector<Tid>{0}));
}

TEST(DeltaStoreTest, TruncateKeepsTombstonesAndRebasesEpochs) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({0, 0}, {0.1, 0.1}).ok());
  ASSERT_TRUE(t.Delete(1).ok());
  EXPECT_EQ(t.delta().log_size(), 2u);

  t.MarkCompacted();
  EXPECT_EQ(t.epoch(), 2u);  // epochs keep counting across compactions
  EXPECT_EQ(t.delta().compacted_epoch(), 2u);
  EXPECT_EQ(t.delta().log_size(), 0u);
  EXPECT_FALSE(t.is_live(1));             // tombstone survives
  EXPECT_EQ(t.delta().num_deleted(), 1u);

  std::vector<Tid> ins, del;
  t.delta().ChangesSince(0, &ins, &del);  // clamped to the compacted epoch
  EXPECT_TRUE(ins.empty());
  EXPECT_TRUE(del.empty());

  ASSERT_TRUE(t.Insert({1, 1}, {0.2, 0.2}).ok());
  EXPECT_EQ(t.epoch(), 3u);
  t.delta().ChangesSince(2, &ins, &del);
  EXPECT_EQ(ins, (std::vector<Tid>{3}));
  EXPECT_EQ(t.delta().InsertsSince(2), 1u);
  EXPECT_EQ(t.delta().DeletesSince(2), 0u);
}

TEST(TableTest, TailScanChargesOnlyDeltaPages) {
  TableSchema schema;
  schema.sel_cardinality = {2};
  schema.num_rank_dims = 1;
  Table t(schema);  // row = 4 + 4 + 8 = 16 bytes -> 256 rows/page
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(t.AddRow({0}, {0.5}).ok());
  }
  Tid first_delta = static_cast<Tid>(t.num_rows());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({1}, {0.5}).ok());
  }
  PageStore store;
  IoSession io{&store};
  EXPECT_EQ(t.NumPages(io.page_size()), 3u);  // 610 rows / 256
  EXPECT_EQ(t.TailPages(first_delta, io.page_size()), 1u);
  t.ChargeTailScan(&io, first_delta);
  EXPECT_EQ(io.stats(IoCategory::kTable).physical, 1u);
  // Empty tail charges nothing.
  t.ChargeTailScan(&io, static_cast<Tid>(t.num_rows()));
  EXPECT_EQ(io.stats(IoCategory::kTable).physical, 1u);
}

TEST(TableTest, PageAccounting) {
  Table t = MakeTable();
  PageStore store;
  IoSession io{&store};
  // Row = 4 + 4*2 + 8*2 = 28 bytes -> 146 rows / 4KB page.
  EXPECT_EQ(t.RowBytes(), 28u);
  EXPECT_EQ(t.RowsPerPage(io.page_size()), 146u);
  EXPECT_EQ(t.NumPages(io.page_size()), 1u);
  t.ChargeFullScan(&io);
  EXPECT_EQ(io.stats(IoCategory::kTable).physical, 1u);
  t.ChargeRowFetch(&io, 0);
  EXPECT_EQ(io.stats(IoCategory::kTable).physical, 2u);
}

}  // namespace
}  // namespace rankcube
