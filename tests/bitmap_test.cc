#include <gtest/gtest.h>

#include <tuple>

#include "bitmap/bitvector.h"
#include "bitmap/bloom.h"
#include "bitmap/codec.h"
#include "common/rng.h"

namespace rankcube {
namespace {

TEST(BitVectorTest, PushAndGet) {
  BitVector bv;
  bv.PushBit(true);
  bv.PushBit(false);
  bv.PushBit(true);
  EXPECT_EQ(bv.size(), 3u);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.ToString(), "101");
  EXPECT_EQ(bv.PopCount(), 2u);
  EXPECT_EQ(bv.LastOnePlusOne(), 3u);
}

TEST(BitVectorTest, AppendBitsMsbFirst) {
  BitVector bv;
  bv.AppendBits(0b1011, 4);
  EXPECT_EQ(bv.ToString(), "1011");
  EXPECT_EQ(bv.ReadBits(0, 4), 0b1011u);
  EXPECT_EQ(bv.ReadBits(1, 3), 0b011u);
}

TEST(BitVectorTest, SetAndSelect) {
  BitVector bv(10, false);
  bv.Set(3, true);
  bv.Set(7, true);
  EXPECT_EQ(bv.SelectOne(0), 3u);
  EXPECT_EQ(bv.SelectOne(1), 7u);
  EXPECT_EQ(bv.SelectOne(2), 10u);  // absent
  bv.Set(3, false);
  EXPECT_EQ(bv.PopCount(), 1u);
}

TEST(BitVectorTest, CrossWordBoundaries) {
  BitVector bv(200, false);
  bv.Set(63, true);
  bv.Set(64, true);
  bv.Set(199, true);
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_EQ(bv.LastOnePlusOne(), 200u);
  EXPECT_EQ(bv.PopCount(), 3u);
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.PopCount(), 70u);
}

TEST(CodecTest, Log2Ceil) {
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(32), 5);
  EXPECT_EQ(Log2Ceil(33), 6);
}

// Round-trip: encode with a scheme, decode, compare (semantic bits).
void RoundTrip(const BitVector& arr, int M, CodecScheme scheme) {
  BitVector encoded;
  EncodeNodeWith(arr, M, scheme, &encoded);
  BitReader reader(encoded);
  BitVector decoded;
  ASSERT_TRUE(DecodeNode(&reader, M, &decoded).ok());
  ASSERT_EQ(decoded.size(), static_cast<size_t>(M));
  for (size_t i = 0; i < static_cast<size_t>(M); ++i) {
    bool expect = i < arr.size() && arr.Get(i);
    EXPECT_EQ(decoded.Get(i), expect)
        << "scheme=" << static_cast<int>(scheme) << " bit " << i << " of "
        << arr.ToString();
  }
}

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodecRoundTripTest, AllSchemesAllDensities) {
  auto [M, density_pct] = GetParam();
  Rng rng(1000 + M * 7 + density_pct);
  static constexpr CodecScheme kAll[] = {
      CodecScheme::kBaseline, CodecScheme::kPiSparse, CodecScheme::kPiDense,
      CodecScheme::kRlSparse, CodecScheme::kRlDense,  CodecScheme::kPcSparse,
      CodecScheme::kPcDense,
  };
  for (int trial = 0; trial < 25; ++trial) {
    size_t len = 1 + rng.UniformInt(M);
    BitVector arr(len, false);
    for (size_t i = 0; i < len; ++i) {
      if (rng.UniformInt(100) < static_cast<uint64_t>(density_pct)) {
        arr.Set(i, true);
      }
    }
    for (CodecScheme s : kAll) RoundTrip(arr, M, s);
    // Adaptive also round-trips and is no larger than baseline.
    BitVector adaptive, baseline;
    size_t ab = EncodeNodeAdaptive(arr, M, &adaptive);
    size_t bb = EncodeNodeWith(arr, M, CodecScheme::kBaseline, &baseline);
    EXPECT_LE(ab, bb);
    BitReader reader(adaptive);
    BitVector decoded;
    ASSERT_TRUE(DecodeNode(&reader, M, &decoded).ok());
    for (size_t i = 0; i < static_cast<size_t>(M); ++i) {
      bool expect = i < arr.size() && arr.Get(i);
      EXPECT_EQ(decoded.Get(i), expect);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTripTest,
    ::testing::Combine(::testing::Values(4, 32, 204),
                       ::testing::Values(2, 10, 50, 90, 100)));

TEST(CodecTest, SparseArraysCompressWell) {
  const int M = 204;
  BitVector arr(M, false);
  arr.Set(3, true);
  arr.Set(100, true);
  BitVector adaptive, baseline;
  size_t ab = EncodeNodeAdaptive(arr, M, &adaptive);
  size_t bb = EncodeNodeWith(arr, M, CodecScheme::kBaseline, &baseline);
  EXPECT_LT(ab, bb / 2);  // 2 ones out of 204: positions beat raw bits
}

TEST(CodecTest, DenseArraysCompressWell) {
  const int M = 204;
  BitVector arr(M, true);
  arr.Set(17, false);
  BitVector adaptive;
  size_t ab = EncodeNodeAdaptive(arr, M, &adaptive);
  EXPECT_LT(ab, 60u);  // one zero out of 204
}

TEST(CodecTest, EmptyAndFullArrays) {
  for (int M : {8, 64}) {
    BitVector zero(static_cast<size_t>(M), false);
    BitVector ones(static_cast<size_t>(M), true);
    for (CodecScheme s :
         {CodecScheme::kBaseline, CodecScheme::kRlSparse,
          CodecScheme::kPiDense, CodecScheme::kPcDense}) {
      RoundTrip(zero, M, s);
      RoundTrip(ones, M, s);
    }
  }
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bf(1024, 4);
  for (uint64_t k = 0; k < 100; ++k) bf.Insert(k * 977);
  for (uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(bf.MayContain(k * 977));
}

TEST(BloomTest, LowFalsePositiveRateWhenSized) {
  const size_t n = 200;
  BloomFilter bf(10 * n, BloomFilter::OptimalHashes(10 * n, n));
  for (uint64_t k = 0; k < n; ++k) bf.Insert(k);
  int fp = 0;
  const int probes = 5000;
  for (int i = 0; i < probes; ++i) {
    if (bf.MayContain(1000000 + i)) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(BloomTest, OptimalHashesFormula) {
  // b/n * ln 2 with b=10n -> ~6.9 -> 7, capped at 8.
  EXPECT_EQ(BloomFilter::OptimalHashes(1000, 100), 7);
  EXPECT_EQ(BloomFilter::OptimalHashes(100000, 100), 8);  // capped
  EXPECT_EQ(BloomFilter::OptimalHashes(100, 1000), 1);    // floor
}

}  // namespace
}  // namespace rankcube
