// Planner + RankCubeDb facade tests:
//  (a) planner-routed execution is tuple-identical to every forced engine
//      (and to the table_scan oracle),
//  (b) the chosen engine shifts with selectivity, predicate count, k and
//      function shape in the directions the paper's block-access analysis
//      predicts,
//  (c) force_engine and unplannable queries fail with clean Statuses.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/query_builder.h"
#include "engine/registry.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "planner/rank_cube_db.h"

namespace rankcube {
namespace {

Table SmallTable() {
  SyntheticSpec spec;
  spec.num_rows = 4000;
  spec.num_sel_dims = 3;
  spec.cardinality = 6;
  spec.num_rank_dims = 2;
  spec.seed = 77;
  return GenerateSynthetic(spec);
}

std::vector<TopKQuery> Workload(const Table& table, int num_predicates,
                                int num_queries = 6) {
  QueryWorkloadSpec spec;
  spec.num_queries = num_queries;
  spec.num_predicates = num_predicates;
  spec.num_rank_used = 2;
  spec.k = 7;
  spec.seed = 4242;
  return GenerateQueries(table, spec);
}

// (a) For every cataloged engine: forcing it gives the same tuples as the
// table_scan oracle and as the planner's own choice — the plan layer adds
// routing, never changes answers.
TEST(RankCubeDbTest, PlannerRoutedExecutionMatchesEveryForcedEngine) {
  RankCubeDb db(SmallTable());
  for (const std::string& name : db.EngineNames()) {
    SCOPED_TRACE("engine: " + name);
    // index_merge takes no predicates; everything else gets 2.
    bool preds = name != "index_merge";
    for (const TopKQuery& query : Workload(db.table(), preds ? 2 : 0)) {
      SCOPED_TRACE(query.ToString());
      QueryOptions force;
      force.force_engine = name;
      auto forced = db.Query(query, force);
      ASSERT_TRUE(forced.ok()) << forced.status().ToString();

      QueryOptions oracle_opts;
      oracle_opts.force_engine = "table_scan";
      auto oracle = db.Query(query, oracle_opts);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      EXPECT_EQ(forced.value().tuples, oracle.value().tuples);

      auto planned = db.Query(query);
      ASSERT_TRUE(planned.ok()) << planned.status().ToString();
      EXPECT_EQ(planned.value().tuples, oracle.value().tuples);
      ASSERT_NE(planned.value().plan, nullptr);
      EXPECT_FALSE(planned.value().plan->chosen_engine.empty());
    }
  }
}

TEST(RankCubeDbTest, QueryAttachesPlanAndExplainAgrees) {
  RankCubeDb db(SmallTable());
  TopKQuery q = QueryBuilder()
                    .Where(0, db.table().sel(5, 0))
                    .OrderByLinear({1.0, 2.0})
                    .Limit(5)
                    .Build();
  auto plan = db.Explain(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan.value().chosen_engine.empty());
  EXPECT_GT(plan.value().estimated_pages, 0.0);
  EXPECT_GE(plan.value().candidates.size(), 8u);  // all builtins considered
  // Explain costs nothing: no structure gets built.
  EXPECT_EQ(db.construction_pages(), 0u);

  auto result = db.Query(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().plan, nullptr);
  EXPECT_EQ(result.value().plan->chosen_engine, plan.value().chosen_engine);
  // Executing built the chosen structure and charged honest build I/O
  // (unless the plan picked the structure-free scan).
  if (plan.value().chosen_engine != "table_scan") {
    EXPECT_GT(db.construction_pages(), 0u);
  }
}

// (b) Selectivity shift: a needle predicate (tiny posting list) routes to
// the boolean-first index; a broad predicate routes to a cube structure,
// never the posting index.
TEST(PlannerRegimeTest, SelectivityShiftsIndexVersusCube) {
  // One high-cardinality dimension (needles) next to a binary one.
  SyntheticSpec spec;
  spec.num_rows = 6000;
  spec.num_sel_dims = 2;
  spec.sel_cardinalities = {2000, 2};
  spec.num_rank_dims = 2;
  spec.seed = 9;
  RankCubeDb db(GenerateSynthetic(spec));

  TopKQuery needle = QueryBuilder()
                         .Where(0, db.table().sel(0, 0))
                         .OrderByLinear({1.0, 1.0})
                         .Limit(10)
                         .Build();
  auto needle_plan = db.Explain(needle);
  ASSERT_TRUE(needle_plan.ok()) << needle_plan.status().ToString();
  EXPECT_EQ(needle_plan.value().chosen_engine, "boolean_first")
      << needle_plan.value().ToString();

  TopKQuery broad = QueryBuilder()
                        .Where(1, db.table().sel(0, 1))
                        .OrderByLinear({1.0, 1.0})
                        .Limit(10)
                        .Build();
  auto broad_plan = db.Explain(broad);
  ASSERT_TRUE(broad_plan.ok()) << broad_plan.status().ToString();
  EXPECT_NE(broad_plan.value().chosen_engine, "boolean_first")
      << broad_plan.value().ToString();
  EXPECT_NE(broad_plan.value().chosen_engine, "table_scan")
      << broad_plan.value().ToString();
}

// (b) Predicate-count shift: with only single-dimension grid cuboids
// materialized, a one-predicate query may use the grid but a two-predicate
// query must shift to a structure that assembles coverage online.
TEST(PlannerRegimeTest, PredicateCountShiftsGridToFragments) {
  RankCubeDb::Options options;
  options.build.grid.cuboid_dim_sets = {{0}, {1}};
  options.engines = {"grid", "fragments", "table_scan"};
  RankCubeDb db(SmallTable(), options);

  TopKQuery one = QueryBuilder()
                      .Where(0, 1)
                      .OrderByLinear({1.0, 1.0})
                      .Limit(10)
                      .Build();
  auto one_plan = db.Explain(one);
  ASSERT_TRUE(one_plan.ok()) << one_plan.status().ToString();
  EXPECT_TRUE(one_plan.value().chosen_engine == "grid" ||
              one_plan.value().chosen_engine == "fragments")
      << one_plan.value().ToString();

  TopKQuery two = QueryBuilder()
                      .Where(0, 1)
                      .Where(1, 2)
                      .OrderByLinear({1.0, 1.0})
                      .Limit(10)
                      .Build();
  auto two_plan = db.Explain(two);
  ASSERT_TRUE(two_plan.ok()) << two_plan.status().ToString();
  EXPECT_EQ(two_plan.value().chosen_engine, "fragments")
      << two_plan.value().ToString();
  // The grid candidate must be present and infeasible, with the coverage
  // gap named.
  bool saw_grid = false;
  for (const auto& c : two_plan.value().candidates) {
    if (c.engine == "grid") {
      saw_grid = true;
      EXPECT_FALSE(c.feasible);
      EXPECT_NE(c.reason.find("cuboid"), std::string::npos) << c.reason;
    }
  }
  EXPECT_TRUE(saw_grid);
  // Planner-routed execution agrees with the scan on both regimes.
  for (const TopKQuery& q : {one, two}) {
    auto planned = db.Query(q);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    QueryOptions force;
    force.force_engine = "table_scan";
    auto oracle = db.Query(q, force);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(planned.value().tuples, oracle.value().tuples);
  }
}

// (b) k shift: a progressive cube search costs pages proportional to k
// (blocks visited until k matches), while the posting-index plan pays the
// full match count regardless of k — so on a selective predicate, tiny k
// favors the cube and k >= all matches favors the index.
TEST(PlannerRegimeTest, KShiftsProgressiveCubeToBulkIndex) {
  SyntheticSpec spec;
  spec.num_rows = 20000;
  spec.num_sel_dims = 2;
  spec.sel_cardinalities = {1000, 4};  // ~20 matches per needle value
  spec.num_rank_dims = 2;
  spec.seed = 31;
  RankCubeDb db(GenerateSynthetic(spec));

  QueryBuilder builder;
  builder.Where(0, db.table().sel(0, 0)).OrderByLinear({1.0, 1.0});

  auto small_k = db.Explain(builder.Limit(1).Build());
  ASSERT_TRUE(small_k.ok());
  const std::string& at_1 = small_k.value().chosen_engine;
  EXPECT_TRUE(at_1 == "grid" || at_1 == "fragments")
      << small_k.value().ToString();

  auto large_k = db.Explain(builder.Limit(100).Build());
  ASSERT_TRUE(large_k.ok());
  EXPECT_EQ(large_k.value().chosen_engine, "boolean_first")
      << large_k.value().ToString();
}

// (b) Function-shape shift: the grid family requires convex functions
// (Lemma 1); a non-convex function forces the planner elsewhere.
TEST(PlannerRegimeTest, NonConvexFunctionExcludesGridFamily) {
  RankCubeDb db(SmallTable());
  TopKQuery q;
  q.function = std::make_shared<GeneralAB>(2, 0, 1);  // (A - B^2)^2
  q.k = 10;
  auto plan = db.Explain(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().chosen_engine, "grid");
  EXPECT_NE(plan.value().chosen_engine, "fragments");
  for (const auto& c : plan.value().candidates) {
    if (c.engine == "grid" || c.engine == "fragments") {
      EXPECT_FALSE(c.feasible);
      EXPECT_NE(c.reason.find("convex"), std::string::npos) << c.reason;
    }
  }
  auto planned = db.Query(q);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  QueryOptions force;
  force.force_engine = "table_scan";
  auto oracle = db.Query(q, force);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(planned.value().tuples, oracle.value().tuples);
}

// (c) force_engine: honored when cataloged, clean NotFound otherwise.
TEST(PlannerStatusTest, ForceEngineHonoredAndChecked) {
  RankCubeDb db(SmallTable());
  TopKQuery q = QueryBuilder()
                    .Where(0, 1)
                    .OrderByLinear({1.0, 1.0})
                    .Limit(5)
                    .Build();
  QueryOptions force;
  force.force_engine = "ranking_first";
  auto result = db.Query(q, force);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().plan, nullptr);
  EXPECT_TRUE(result.value().plan->forced);
  EXPECT_EQ(result.value().plan->chosen_engine, "ranking_first");

  force.force_engine = "no_such_engine";
  auto missing = db.Query(q, force);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);
  // The error lists what *is* available.
  EXPECT_NE(missing.status().message().find("table_scan"),
            std::string::npos)
      << missing.status().message();
}

// (c) Unplannable: a predicated query against a catalog holding only the
// predicate-free index_merge fails with a clean NotFound naming the gap.
TEST(PlannerStatusTest, UnplannableQueryFailsCleanly) {
  RankCubeDb::Options options;
  options.engines = {"index_merge"};
  RankCubeDb db(SmallTable(), options);
  TopKQuery q = QueryBuilder()
                    .Where(0, 1)
                    .OrderByLinear({1.0, 1.0})
                    .Limit(5)
                    .Build();
  auto plan = db.Explain(q);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), Status::Code::kNotFound);
  EXPECT_NE(plan.status().message().find("predicate"), std::string::npos)
      << plan.status().message();
  auto result = db.Query(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);

  // The same query without predicates is plannable again.
  auto ok = db.Query(
      QueryBuilder().OrderByLinear({1.0, 1.0}).Limit(5).Build());
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// A malformed query fails validation before planning, with the same
// InvalidArgument every engine reports.
TEST(PlannerStatusTest, MalformedQueryFailsBeforePlanning) {
  RankCubeDb db(SmallTable());
  TopKQuery bad =
      QueryBuilder().Where(0, 999).OrderByLinear({1, 1}).Limit(5).Build();
  auto plan = db.Explain(bad);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), Status::Code::kInvalidArgument);
  auto result = db.Query(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

// Batch paths: QueryAll and QueryParallel route per query through the
// planner and return tuples identical to one-at-a-time execution.
TEST(RankCubeDbTest, BatchAndParallelMatchSingleQueryExecution) {
  RankCubeDb db(SmallTable());
  // Mixed workload: predicated and unpredicated queries in one batch (they
  // may legitimately route to different engines).
  std::vector<TopKQuery> workload = Workload(db.table(), 2, 4);
  for (TopKQuery& q : Workload(db.table(), 0, 4)) {
    workload.push_back(std::move(q));
  }

  BatchOptions batch;
  batch.keep_results = true;
  auto all = db.QueryAll(workload, QueryOptions(), batch);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all.value().failed, 0u) << all.value().first_error.ToString();
  ASSERT_EQ(all.value().results.size(), workload.size());

  auto parallel = db.QueryParallel(workload, 4, QueryOptions(), batch);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel.value().failed, 0u);
  ASSERT_EQ(parallel.value().results.size(), workload.size());

  for (size_t i = 0; i < workload.size(); ++i) {
    auto single = db.Query(workload[i]);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    EXPECT_EQ(all.value().results[i].tuples, single.value().tuples);
    EXPECT_EQ(parallel.value().results[i].tuples, single.value().tuples);
    ASSERT_NE(all.value().results[i].plan, nullptr);
  }
}

// Lazy cataloging: predictions are replaced by exact Describe() output
// once a structure is built.
TEST(RankCubeDbTest, CatalogUpgradesPredictionsToBuiltStats) {
  RankCubeDb db(SmallTable());
  for (const auto& entry : db.CatalogEntries()) {
    EXPECT_FALSE(entry.built) << entry.engine;
  }
  ASSERT_TRUE(db.Engine("grid").ok());
  bool found = false;
  for (const auto& entry : db.CatalogEntries()) {
    if (entry.engine == "grid") {
      found = true;
      EXPECT_TRUE(entry.built);
      EXPECT_GT(entry.size_bytes, 0u);
      EXPECT_GT(entry.cuboid_cells, 0u);
      EXPECT_EQ(entry.num_cuboids, 7);  // 2^3 - 1 cuboids over 3 dims
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rankcube
