#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/signature.h"

namespace rankcube {
namespace {

// Paths from Table 4.1 (the thesis's running example, M = 2).
const std::vector<std::vector<int>> kPaths = {
    {1, 1, 1},  // t1 (a1, b1)
    {1, 1, 2},  // t2 (a2, b2)
    {1, 2, 1},  // t3 (a1, b1)
    {1, 2, 2},  // t4 (a3, b3)
    {2, 1, 1},  // t5 (a4, b1)
    {2, 1, 2},  // t6 (a2, b3)
    {2, 2, 1},  // t7 (a4, b2)
    {2, 2, 2},  // t8 (a3, b3)
};

TEST(SidTest, PaperExample) {
  // §4.2.1: with M = 2, the path of node N3 is <1,1> and its SID is 4.
  EXPECT_EQ(SidOfPath({1, 1}, 2, 2), 4u);
  EXPECT_EQ(SidOfPath({}, 0, 2), 0u);   // root
  EXPECT_EQ(SidOfPath({1}, 1, 2), 1u);  // N1
  EXPECT_EQ(SidOfPath({2}, 1, 2), 2u);  // N2
}

TEST(SignatureTest, A1SignatureFromFigure43) {
  // (A = a1) covers t1 <1,1,1> and t3 <1,2,1>.
  Signature sig = Signature::FromPaths({kPaths[0], kPaths[2]}, 2);
  // Root: left child only.
  EXPECT_TRUE(sig.TestPath({1}, 1));
  EXPECT_FALSE(sig.TestPath({2}, 1));
  // N1: both children (N3 via t1, N4 via t3).
  EXPECT_TRUE(sig.TestPath({1, 1}, 2));
  EXPECT_TRUE(sig.TestPath({1, 2}, 2));
  // Leaf entries.
  EXPECT_TRUE(sig.TestPath({1, 1, 1}));
  EXPECT_FALSE(sig.TestPath({1, 1, 2}));
  EXPECT_TRUE(sig.TestPath({1, 2, 1}));
  EXPECT_FALSE(sig.TestPath({1, 2, 2}));
}

TEST(SignatureTest, UnionExampleFigure47) {
  // (A=a2): t2 <1,1,2>, t6 <2,1,2>.  (B=b2): t2 <1,1,2>, t7 <2,2,1>.
  Signature a2 = Signature::FromPaths({kPaths[1], kPaths[5]}, 2);
  Signature b2 = Signature::FromPaths({kPaths[1], kPaths[6]}, 2);
  Signature u = Signature::Union(a2, b2);
  EXPECT_TRUE(u.TestPath({1, 1, 2}));  // t2
  EXPECT_TRUE(u.TestPath({2, 1, 2}));  // t6
  EXPECT_TRUE(u.TestPath({2, 2, 1}));  // t7
  EXPECT_FALSE(u.TestPath({1, 1, 1}));
}

TEST(SignatureTest, IntersectExampleFigure47) {
  // (A=a2 and B=b2) contains only t2.
  Signature a2 = Signature::FromPaths({kPaths[1], kPaths[5]}, 2);
  Signature b2 = Signature::FromPaths({kPaths[1], kPaths[6]}, 2);
  Signature i = Signature::Intersect(a2, b2);
  EXPECT_TRUE(i.TestPath({1, 1, 2}));   // t2 survives
  EXPECT_FALSE(i.TestPath({2, 1, 2}));  // t6 gone
  EXPECT_FALSE(i.TestPath({2, 2, 1}));  // t7 gone
  // The recursive rule also cleared the now-empty N2 branch entirely.
  EXPECT_FALSE(i.TestPath({2}, 1));
}

TEST(SignatureTest, ClearPathPropagatesEmptiness) {
  Signature sig = Signature::FromPaths({{1, 1, 1}, {1, 2, 1}}, 2);
  sig.ClearPath({1, 1, 1});
  EXPECT_FALSE(sig.TestPath({1, 1, 1}));
  EXPECT_FALSE(sig.TestPath({1, 1}, 2));  // N3 branch emptied
  EXPECT_TRUE(sig.TestPath({1, 2, 1}));   // sibling untouched
  sig.ClearPath({1, 2, 1});
  EXPECT_TRUE(sig.empty());  // everything propagated to the root
}

TEST(SignatureTest, SetPathAfterClearRestores) {
  Signature sig(2);
  sig.SetPath({2, 1, 2});
  EXPECT_TRUE(sig.TestPath({2, 1, 2}));
  sig.ClearPath({2, 1, 2});
  EXPECT_TRUE(sig.empty());
  sig.SetPath({2, 1, 2});
  EXPECT_TRUE(sig.TestPath({2, 1, 2}));
}

TEST(SignatureTest, TestPathPrefixSemantics) {
  Signature sig = Signature::FromPaths({{1, 2, 1}}, 2);
  EXPECT_TRUE(sig.TestPath({1, 2, 1}, 0));  // empty prefix: trivially true
  EXPECT_TRUE(sig.TestPath({1, 2, 1}, 1));
  EXPECT_TRUE(sig.TestPath({1, 2, 1}, 2));
  EXPECT_TRUE(sig.TestPath({1, 2, 1}, 3));
  EXPECT_FALSE(sig.TestPath({1, 1, 1}, 2));
}

TEST(StoredSignatureTest, CompressionRoundTripAccounting) {
  // Larger fanout: build from many random-ish paths.
  const int M = 32;
  std::vector<std::vector<int>> paths;
  for (int i = 0; i < 500; ++i) {
    paths.push_back({1 + (i * 7) % M, 1 + (i * 13) % M, 1 + i % M});
  }
  Signature sig = Signature::FromPaths(paths, M);
  StoredSignature stored = StoredSignature::Compress(sig, 4096, 0.5);
  EXPECT_GT(stored.partials().size(), 0u);
  EXPECT_GT(stored.CompressedBytes(), 0u);
  EXPECT_LE(stored.CompressedBytes(), stored.BaselineBytes());
  // Every node is owned by exactly one partial.
  size_t owned = 0;
  for (const auto& p : stored.partials()) owned += p.node_sids.size();
  EXPECT_EQ(owned, sig.num_nodes());
  for (const auto& [sid, bits] : sig.nodes()) {
    (void)bits;
    EXPECT_NE(stored.PartialOf(sid), SIZE_MAX);
  }
}

TEST(StoredSignatureTest, SmallAlphaMakesMorePartials) {
  const int M = 16;
  Rng rng(17);
  std::vector<std::vector<int>> paths;
  for (int i = 0; i < 4000; ++i) {
    paths.push_back({static_cast<int>(rng.UniformInt(M)) + 1,
                     static_cast<int>(rng.UniformInt(M)) + 1,
                     static_cast<int>(rng.UniformInt(M)) + 1});
  }
  Signature sig = Signature::FromPaths(paths, M);
  StoredSignature big = StoredSignature::Compress(sig, 4096, 0.9);
  StoredSignature small = StoredSignature::Compress(sig, 4096, 0.02);
  EXPECT_GT(small.partials().size(), big.partials().size());
}

TEST(StoredSignatureTest, EmptySignature) {
  Signature sig(8);
  StoredSignature stored = StoredSignature::Compress(sig, 4096);
  EXPECT_TRUE(stored.partials().empty());
  EXPECT_EQ(stored.CompressedBytes(), 0u);
  EXPECT_EQ(stored.PartialOf(0), SIZE_MAX);
}

}  // namespace
}  // namespace rankcube
