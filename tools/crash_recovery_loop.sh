#!/usr/bin/env bash
# Crash-recovery loop: boots rankcubed on a durable data dir, hammers it
# with journaled INSERTs (bench_recovery --hammer records every acked tid),
# kill -9s the daemon mid-write, restarts it, and asserts the durability
# invariant (bench_recovery --verify): with --fsync=always every acked
# write must survive — tids are dense and never reused, so any acked tid
# >= the recovered row count means a committed insert was lost.
#
# Usage: tools/crash_recovery_loop.sh [build_dir] [rounds]
#   build_dir defaults to ./build, rounds to 5.
set -u
cd "$(dirname "$0")/.."

BUILD=${1:-build}
ROUNDS=${2:-5}
RANKCUBED="$BUILD/src/server/rankcubed"
BENCH="$BUILD/bench/bench_recovery"
[ -x "$RANKCUBED" ] || RANKCUBED="$BUILD/rankcubed"
[ -x "$BENCH" ] || BENCH="$BUILD/bench_recovery"
if [ ! -x "$RANKCUBED" ] || [ ! -x "$BENCH" ]; then
  echo "crash_recovery_loop: need rankcubed and bench_recovery under $BUILD" >&2
  exit 2
fi

WORK=$(mktemp -d /tmp/rankcube_crashloop.XXXXXX)
DATA="$WORK/data"
JOURNAL="$WORK/acked.journal"
LOG="$WORK/rankcubed.log"
: > "$JOURNAL"
trap 'kill -9 $SERVER_PID 2>/dev/null; rm -rf "$WORK"' EXIT

SERVER_PID=
start_server() {
  "$RANKCUBED" --port=0 --rows=2000 --sel_dims=3 --cardinality=20 \
    --rank_dims=2 --data_dir="$DATA" --fsync=always >"$WORK/stdout" \
    2>>"$LOG" &
  SERVER_PID=$!
  # The daemon prints "rankcubed listening on HOST:PORT" once it serves.
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\)$/\1/p' "$WORK/stdout")
    [ -n "$PORT" ] && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  echo "crash_recovery_loop: server failed to start" >&2
  cat "$LOG" >&2
  exit 2
}

for round in $(seq 1 "$ROUNDS"); do
  start_server
  # Hammer until we kill the daemon underneath the client mid-write.
  "$BENCH" --hammer --port="$PORT" --journal="$JOURNAL" \
    --sel_dims=3 --cardinality=20 --rank_dims=2 &
  HAMMER_PID=$!
  sleep 1
  kill -9 "$SERVER_PID" 2>/dev/null
  wait "$HAMMER_PID" || true  # exits cleanly when the connection dies
  wait "$SERVER_PID" 2>/dev/null || true

  # Restart: recovery replays the WAL; verify no acked write was lost and
  # the server answers queries.
  start_server
  if ! "$BENCH" --verify --port="$PORT" --journal="$JOURNAL"; then
    echo "crash_recovery_loop: FAILED at round $round" >&2
    cat "$LOG" >&2
    exit 1
  fi
  kill "$SERVER_PID" 2>/dev/null  # graceful: SIGTERM checkpoint path
  wait "$SERVER_PID" 2>/dev/null || true
done

acked=$(wc -l < "$JOURNAL")
echo "crash_recovery_loop: PASSED $ROUNDS rounds ($acked acked writes, 0 lost)"
