#!/usr/bin/env bash
# Verifies the fused scoring kernels' dense loops actually vectorize —
# "verified, not assumed": every line in src/func/kernels/kernels.cc tagged
# with a `// VEC:` marker must appear in GCC's vectorizer report
# (-fopt-info-vec-optimized) when compiled with the same per-source flags
# CMake applies (-O3 -march=x86-64-v3 -ffp-contract=off -fno-trapping-math).
#
# A refactor that silently breaks if-conversion or introduces a loop-carried
# dependence drops the loop from the report and fails this check, instead of
# shipping a scalar "kernel" that benches 4x slower.
#
# Usage: tools/check_vectorization.sh   (from anywhere; CXX overridable)
set -u
cd "$(dirname "$0")/.."

SRC=src/func/kernels/kernels.cc
CXX=${CXX:-g++}

arch=$(uname -m)
case "$arch" in
  x86_64 | amd64) ;;
  *)
    echo "check_vectorization: skipping on $arch (kernels are built" \
         "without -march=x86-64-v3 there)"
    exit 0
    ;;
esac

report=$("$CXX" -std=c++20 -O3 -march=x86-64-v3 -ffp-contract=off \
  -fno-trapping-math -Wall -Wextra -Isrc -I. \
  -fopt-info-vec-optimized -c "$SRC" -o /dev/null 2>&1)
if [ $? -ne 0 ]; then
  echo "check_vectorization: $SRC failed to compile:"
  echo "$report"
  exit 1
fi

failed=0
checked=0
while IFS=: read -r line rest; do
  tag=${rest##*// VEC: }
  checked=$((checked + 1))
  if echo "$report" | grep -E "kernels\.cc:${line}:[0-9]+: optimized: loop vectorized" > /dev/null; then
    echo "  ok: line ${line} (${tag}) vectorized"
  else
    echo "  FAIL: line ${line} (${tag}) did NOT vectorize"
    failed=1
  fi
done < <(grep -nE '// VEC: [a-z0-9_]+$' "$SRC")

if [ "$checked" -lt 7 ]; then
  echo "check_vectorization: expected >= 7 // VEC: markers in $SRC," \
       "found $checked (markers deleted?)"
  exit 1
fi
if [ "$failed" -ne 0 ]; then
  echo "check_vectorization: FAILED — full vectorizer report:"
  echo "$report"
  exit 1
fi
echo "check_vectorization: all $checked marked loops vectorized"
