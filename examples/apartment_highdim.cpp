// High-dimensional apartment search (§1.2.2): many boolean amenities AND
// many ranking criteria. Boolean dimensionality is handled by ranking
// fragments (Ch3); ranking dimensionality by index-merge over two B+-tree
// indices with a join-signature (Ch5). Both run behind the same
// RankingEngine interface.
#include <cstdio>
#include <memory>

#include "core/ranking_fragments.h"
#include "engine/builtin_engines.h"
#include "engine/query_builder.h"
#include "gen/synthetic.h"
#include "merge/index_merge.h"

using namespace rankcube;

int main() {
  // 12 boolean amenities (washer, AC, parking, pool, ...); 4 ranking
  // criteria (rent, distance-to-campus, deposit, application fee).
  SyntheticSpec spec;
  spec.num_rows = 100000;
  spec.num_sel_dims = 12;
  spec.cardinality = 2;
  spec.num_rank_dims = 4;
  spec.seed = 11;
  Table apartments = GenerateSynthetic(spec);
  PageStore store;
  IoSession io{&store};
  ExecContext ctx;
  ctx.io = &io;

  // --- Part 1: high boolean dimensionality -> ranking fragments (F=2). ---
  auto fragments = std::make_shared<RankingFragments>(
      apartments, io, FragmentsOptions{.fragment_size = 2});
  auto frag_engine = MakeFragmentsEngine(apartments, fragments);

  TopKQuery q = QueryBuilder()
                    .Where(0, 1).Where(5, 1).Where(9, 1)  // washer+AC+parking
                    .OrderByLinear({0.6, 0.4, 0.0, 0.0})  // rent + distance
                    .Limit(5)
                    .Build();
  auto res = frag_engine->Execute(q, ctx);
  if (!res.ok()) {
    std::printf("error: %s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("Fragments (12 boolean dims, query covered by %d cuboids):\n",
              fragments->CoveringCuboidCount(q));
  for (const auto& apt : res->tuples) {
    std::printf("  apt #%u  rent=%.2f dist=%.2f  score=%.4f\n", apt.tid,
                apartments.rank(apt.tid, 0), apartments.rank(apt.tid, 1),
                apt.score);
  }
  std::printf("  -> %.2f ms, %llu pages\n\n", res->stats.time_ms,
              static_cast<unsigned long long>(res->stats.pages_read));

  // --- Part 2: high ranking dimensionality -> index-merge (Ch5). --------
  // Two B+-trees (rent, deposit) merged under a non-monotone trade-off
  // function (rent - deposit^2)^2 with join-signature pruning.
  BTree rent_idx(apartments, 0, io);
  BTree deposit_idx(apartments, 2, io);
  BTreeMergeIndex m0(&rent_idx, 0), m1(&deposit_idx, 2);
  std::vector<const MergeIndex*> indices{&m0, &m1};
  JoinSignature sig(indices);

  MergeOptions opt;
  opt.signatures = {&sig};
  opt.signature_positions = {{0, 1}};
  auto merge_engine = MakeIndexMergeEngine(apartments, indices, opt);

  TopKQuery q2 = QueryBuilder()
                     .OrderBy(std::make_shared<GeneralAB>(4, 0, 2))
                     .Limit(5)
                     .Build();
  auto merged = merge_engine->Execute(q2, ctx);
  if (!merged.ok()) {
    std::printf("error: %s\n", merged.status().ToString().c_str());
    return 1;
  }
  std::printf("Index-merge (f = (rent - deposit^2)^2, join-signature on):\n");
  for (const auto& apt : merged->tuples) {
    std::printf("  apt #%u  rent=%.2f deposit=%.2f  score=%.6f\n", apt.tid,
                apartments.rank(apt.tid, 0), apartments.rank(apt.tid, 2),
                apt.score);
  }
  std::printf("  -> %.2f ms, %llu states generated, %llu signature pages\n",
              merged->stats.time_ms,
              static_cast<unsigned long long>(merged->stats.states_generated),
              static_cast<unsigned long long>(merged->stats.signature_pages));
  return 0;
}
