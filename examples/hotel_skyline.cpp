// Skyline OLAP over a hotel database (Ch7): which hotels are not dominated
// on (price, distance-to-beach) among those matching boolean amenities —
// then drill down (add a predicate) and roll up (remove it) reusing the
// candidate heap instead of recomputing from scratch.
#include <cstdio>

#include "gen/synthetic.h"
#include "skyline/olap_session.h"

using namespace rankcube;

int main() {
  // Selection: district(8), stars(5), breakfast(2), wifi(2);
  // ranking: price, distance (anti-correlated: beachfront costs more).
  SyntheticSpec spec;
  spec.num_rows = 60000;
  spec.num_sel_dims = 4;
  spec.sel_cardinalities = {8, 5, 2, 2};
  spec.num_rank_dims = 2;
  spec.distribution = RankDistribution::kAntiCorrelated;
  spec.seed = 3;
  Table hotels = GenerateSynthetic(spec);

  PageStore store;
  IoSession io{&store};
  SkylineEngine engine(hotels, io);
  SkylineSession session(&engine);
  SkylineTransform tf = SkylineTransform::Static(2);

  // Skyline of hotels with breakfast.
  ExecStats s0;
  auto base = session.Query({{2, 1}}, tf, &io, &s0);
  if (!base.ok()) {
    std::printf("error: %s\n", base.status().ToString().c_str());
    return 1;
  }
  std::printf("Skyline with breakfast: %zu hotels, %.2f ms\n", base->size(),
              s0.time_ms);

  // Drill down: also require wifi. Reuses the candidate heap.
  ExecStats s1;
  auto drilled = session.DrillDown({{3, 1}}, &io, &s1);
  std::printf("  + wifi (drill-down):  %zu hotels, %.2f ms\n",
              drilled.value().size(), s1.time_ms);

  // Roll up: drop the breakfast requirement.
  ExecStats s2;
  auto rolled = session.RollUp({2}, &io, &s2);
  std::printf("  - breakfast (roll-up): %zu hotels, %.2f ms\n",
              rolled.value().size(), s2.time_ms);

  // Dynamic skyline: "hotels least dominated around my price/location
  // sweet spot" (§7.2.3).
  ExecStats s3;
  auto dyn = engine.Signature({{3, 1}}, SkylineTransform::Dynamic({0.3, 0.2}),
                              &io, &s3);
  std::printf("Dynamic skyline around (price=0.3, dist=0.2) with wifi: "
              "%zu hotels, %.2f ms\n",
              dyn.value().size(), s3.time_ms);

  std::printf("\nFirst few skyline hotels (price, distance):\n");
  size_t shown = 0;
  for (Tid t : *base) {
    if (shown++ == 5) break;
    std::printf("  hotel #%u  (%.3f, %.3f) district=%d stars=%d\n", t,
                hotels.rank(t, 0), hotels.rank(t, 1), hotels.sel(t, 0),
                hotels.sel(t, 1) + 1);
  }
  return 0;
}
