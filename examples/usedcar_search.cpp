// The thesis's motivating scenario (Example 1, Ch1): an online used-car
// database. Selection dimensions are categorical options (type, maker,
// color, transmission, and boolean extras); ranking dimensions are price and
// mileage (normalized). Users issue ad hoc top-k queries such as
//   Q1: top 10 red sedans ordered by price + mileage
//   Q2: top 5 Ford convertibles closest to ($20k, 10k miles)
// Both go to the RankCubeDb facade, which cost-picks the physical access
// structure per query — the front-end never names an engine.
#include <cstdio>

#include "engine/query_builder.h"
#include "gen/synthetic.h"
#include "planner/rank_cube_db.h"

using namespace rankcube;

namespace {
constexpr const char* kTypes[] = {"sedan", "convertible", "suv", "wagon"};
constexpr const char* kMakers[] = {"ford", "hyundai", "toyota", "bmw",
                                   "honda"};
constexpr const char* kColors[] = {"red", "silver", "black", "white", "blue",
                                   "green"};
}  // namespace

int main() {
  // Schema: type(4), maker(5), color(6), transmission(2), power_window(2),
  // sunroof(2); ranking: price, mileage in [0,1] (0 = cheapest / lowest).
  SyntheticSpec spec;
  spec.num_rows = 120000;
  spec.num_sel_dims = 6;
  spec.sel_cardinalities = {4, 5, 6, 2, 2, 2};
  spec.num_rank_dims = 2;
  spec.seed = 2026;
  RankCubeDb db(GenerateSynthetic(spec));
  const Table& cars = db.table();

  // Q1: select top 10 * from R where type='sedan' and color='red'
  //     order by price + milage asc
  TopKQuery q1 = QueryBuilder()
                     .Where(0, 0 /* sedan */)
                     .Where(2, 0 /* red */)
                     .OrderByLinear({1.0, 1.0})
                     .Limit(10)
                     .Build();

  // Q2: select top 5 * from R where maker='ford' and type='convertible'
  //     order by (price - 20k)^2 + (milage - 10k)^2 asc
  // (normalized: $20k ~ 0.4 of the price scale, 10k miles ~ 0.1).
  TopKQuery q2 = QueryBuilder()
                     .Where(1, 0 /* ford */)
                     .Where(0, 1 /* convertible */)
                     .OrderByDistance({1.0, 1.0}, {0.4, 0.1})
                     .Limit(5)
                     .Build();

  for (const auto* q : {&q1, &q2}) {
    auto res = db.Query(*q);
    if (!res.ok()) {
      std::printf("error: %s\n", res.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", q->ToString().c_str());
    for (const auto& car : res->tuples) {
      std::printf("  car #%u: %s %s %s  price=%.2f mileage=%.2f  score=%.4f\n",
                  car.tid, kColors[cars.sel(car.tid, 2)],
                  kMakers[cars.sel(car.tid, 1)], kTypes[cars.sel(car.tid, 0)],
                  cars.rank(car.tid, 0), cars.rank(car.tid, 1), car.score);
    }
    std::printf("  -> routed to %s (est %.0f pages): %.3f ms, %llu page "
                "reads\n\n",
                res->plan->chosen_engine.c_str(),
                res->plan->estimated_pages, res->stats.time_ms,
                static_cast<unsigned long long>(res->stats.pages_read));
  }
  return 0;
}
