// Multi-dimensional data analysis (Example 2, Ch1): a notebook comparison
// database with schema (brand, price_band, cpu, memory, disk). An analyst
// first asks for the top low-end Dell notebooks by a market-potential
// function f(cpu, memory, disk), then ROLLS UP on the brand dimension to
// compare against all makers — the OLAP-of-ranked-queries workflow the
// ranking cube was designed for.
#include <cstdio>
#include <memory>

#include "core/ranking_fragments.h"
#include "engine/builtin_engines.h"
#include "engine/query_builder.h"
#include "gen/synthetic.h"

using namespace rankcube;

namespace {
constexpr const char* kBrands[] = {"dell", "lenovo", "hp", "asus", "apple"};
}

int main() {
  // Selection: brand(5), price_band(4: 0 = low end), retailer(8),
  // form_factor(3); ranking: cpu, memory, disk scores in [0,1] where LOWER
  // is better (the generator's convention; think of it as normalized rank).
  SyntheticSpec spec;
  spec.num_rows = 80000;
  spec.num_sel_dims = 4;
  spec.sel_cardinalities = {5, 4, 8, 3};
  spec.num_rank_dims = 3;
  spec.seed = 7;
  Table notebooks = GenerateSynthetic(spec);

  PageStore store;
  IoSession io{&store};
  // High(ish)-dimensional selection space: materialize ranking fragments
  // (F = 2) instead of the full 2^4-cuboid cube, and query them through the
  // unified engine interface.
  auto fragments = std::make_shared<RankingFragments>(
      notebooks, io,
      FragmentsOptions{.block_size = 300, .fragment_size = 2});
  auto engine = MakeFragmentsEngine(notebooks, fragments);

  // Market potential f over (cpu, memory, disk). Drill: top-5 low-end Dell
  // notebooks; then roll up on brand to compare against all makers.
  QueryBuilder base;
  base.OrderByLinear({0.5, 0.3, 0.2}).Limit(5);
  TopKQuery drill = QueryBuilder(base).Where(0, 0 /* dell */)
                        .Where(1, 0 /* low end */).Build();
  TopKQuery rollup = QueryBuilder(base).Where(1, 0 /* low end */).Build();

  ExecContext ctx;
  ctx.io = &io;
  auto dell = engine->Execute(drill, ctx);
  auto all = engine->Execute(rollup, ctx);
  if (!dell.ok() || !all.ok()) {
    std::printf("error: %s %s\n", dell.status().ToString().c_str(),
                all.status().ToString().c_str());
    return 1;
  }

  std::printf("Top low-end DELL notebooks (%zu covering cuboid(s)):\n",
              static_cast<size_t>(fragments->CoveringCuboidCount(drill)));
  for (const auto& nb : dell->tuples) {
    std::printf("  #%u  score=%.4f\n", nb.tid, nb.score);
  }
  std::printf("\nTop low-end notebooks, ALL brands:\n");
  int dell_in_top = 0;
  for (const auto& nb : all->tuples) {
    bool is_dell = notebooks.sel(nb.tid, 0) == 0;
    dell_in_top += is_dell;
    std::printf("  #%u  %-6s score=%.4f\n", nb.tid,
                kBrands[notebooks.sel(nb.tid, 0)], nb.score);
  }
  std::printf("\nAnalysis: %d of the top-%d low-end notebooks are Dell — "
              "that is Dell's position in the low-end market.\n",
              dell_in_top, rollup.k);
  std::printf("(drill query: %.2f ms; roll-up query: %.2f ms)\n",
              dell->stats.time_ms, all->stats.time_ms);
  return 0;
}
