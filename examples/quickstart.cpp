// Quickstart: build a relation, pick top-k engines from the EngineRegistry,
// and answer one multi-dimensionally selected top-k query through the
// unified RankingEngine::Execute interface — every engine is interchangeable
// behind the same call.
//
//   ./examples/quickstart
#include <cstdio>

#include "engine/query_builder.h"
#include "engine/registry.h"
#include "gen/synthetic.h"

using namespace rankcube;

int main() {
  // 1. A relation with 3 categorical selection dimensions (cardinality 20)
  //    and 2 ranking dimensions in [0, 1].
  SyntheticSpec spec;
  spec.num_rows = 50000;
  spec.num_sel_dims = 3;
  spec.cardinality = 20;
  spec.num_rank_dims = 2;
  Table table = GenerateSynthetic(spec);

  // 2. Simulated block device: every index/cube structure charges page
  //    accesses here, so engines can be compared on I/O.
  PageStore store;
  IoSession io{&store};

  // 3. "select top 5 * from R where A0 = a and A1 = b
  //     order by N0 + 2*N1"
  TopKQuery query = QueryBuilder()
                        .Where(0, table.sel(42, 0))
                        .Where(1, table.sel(42, 1))
                        .OrderByLinear({1.0, 2.0})
                        .Limit(5)
                        .Build();
  std::printf("query: %s\n\n", query.ToString().c_str());

  // 4. Any registered engine answers it; the cubes touch a tiny fraction of
  //    the data the scan reads.
  for (const char* name : {"grid", "signature", "table_scan"}) {
    auto engine = EngineRegistry::Global().Create(name, table, io);
    if (!engine.ok()) {
      std::printf("error: %s\n", engine.status().ToString().c_str());
      return 1;
    }
    ExecContext ctx;
    ctx.io = &io;
    auto result = (*engine)->Execute(query, ctx);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s", name);
    for (const auto& r : result->tuples) {
      std::printf(" (t%u, %.4f)", r.tid, r.score);
    }
    std::printf("\n  %-14s %.3f ms, %llu pages, %llu tuples evaluated\n", "",
                result->stats.time_ms,
                static_cast<unsigned long long>(result->stats.pages_read),
                static_cast<unsigned long long>(
                    result->stats.tuples_evaluated));
  }
  std::printf("\nAll three agree; every engine ran through "
              "EngineRegistry::Create + RankingEngine::Execute.\n");
  return 0;
}
