// Quickstart: build a relation, open it as a RankCubeDb, and answer
// multi-dimensionally selected top-k queries without ever naming an
// engine — the cost-based planner picks the physical access structure
// (grid cube, fragments, signature cube, R-tree, boolean-first indexes,
// table scan, ...) per query, builds it lazily, and reports the decision
// next to the measured I/O.
//
//   ./examples/quickstart
#include <cstdio>

#include "engine/query_builder.h"
#include "planner/rank_cube_db.h"
#include "gen/synthetic.h"

using namespace rankcube;

int main() {
  // 1. A relation with 3 categorical selection dimensions (cardinality 20)
  //    and 2 ranking dimensions in [0, 1].
  SyntheticSpec spec;
  spec.num_rows = 50000;
  spec.num_sel_dims = 3;
  spec.cardinality = 20;
  spec.num_rank_dims = 2;
  Table table = GenerateSynthetic(spec);

  // 2. The database facade: owns the table, the simulated block device,
  //    and a catalog of every registered access structure. Nothing is
  //    built yet — structures materialize the first time a plan needs
  //    them.
  RankCubeDb db(std::move(table));

  // 3. "select top 5 * from R where A0 = a and A1 = b
  //     order by N0 + 2*N1"
  TopKQuery query = QueryBuilder()
                        .Where(0, db.table().sel(42, 0))
                        .Where(1, db.table().sel(42, 1))
                        .OrderByLinear({1.0, 2.0})
                        .Limit(5)
                        .Build();
  std::printf("query: %s\n\n", query.ToString().c_str());

  // 4. EXPLAIN costs nothing: the planner prices every candidate from
  //    catalog statistics (the paper's block-access analysis) without
  //    building or executing anything.
  auto plan = db.Explain(query);
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", plan.value().ToString().c_str());

  // 5. Execute. The chosen structure is built lazily; the result carries
  //    the plan next to the measured counters, so estimated pages can be
  //    compared with what the execution actually read.
  auto result = db.Query(query);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("routed to %-12s:", result->plan->chosen_engine.c_str());
  for (const auto& r : result->tuples) {
    std::printf(" (t%u, %.4f)", r.tid, r.score);
  }
  std::printf("\n  est %.0f pages, measured %llu pages, %.3f ms, "
              "%llu tuples evaluated\n\n",
              result->plan->estimated_pages,
              static_cast<unsigned long long>(result->stats.pages_read),
              result->stats.time_ms,
              static_cast<unsigned long long>(result->stats.tuples_evaluated));

  // 6. Every engine stays individually reachable: force one to compare.
  for (const char* name : {"grid", "signature", "table_scan"}) {
    QueryOptions force;
    force.force_engine = name;
    auto forced = db.Query(query, force);
    if (!forced.ok()) {
      std::printf("error: %s\n", forced.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s %6llu pages, %.3f ms\n", name,
                static_cast<unsigned long long>(forced->stats.pages_read),
                forced->stats.time_ms);
  }
  std::printf("\nAll answers agree tuple-for-tuple; the planner simply "
              "routed to the cheapest structure.\n");
  return 0;
}
