// Quickstart: build a ranking cube over a small relation and answer a
// multi-dimensionally selected top-k query three ways (grid cube, signature
// cube, table-scan oracle).
//
//   ./examples/quickstart
#include <cstdio>

#include "baselines/baselines.h"
#include "core/grid_cube.h"
#include "core/signature_cube.h"
#include "gen/synthetic.h"

using namespace rankcube;

int main() {
  // 1. A relation with 3 categorical selection dimensions (cardinality 20)
  //    and 2 ranking dimensions in [0, 1].
  SyntheticSpec spec;
  spec.num_rows = 50000;
  spec.num_sel_dims = 3;
  spec.cardinality = 20;
  spec.num_rank_dims = 2;
  Table table = GenerateSynthetic(spec);

  // 2. Simulated block device: every index/cube structure charges page
  //    accesses here, so methods can be compared on I/O.
  Pager pager;

  // 3. Materialize both ranking-cube variants.
  GridRankingCube grid_cube(table, pager);        // Ch3: grid + neighborhood
  SignatureCube signature_cube(table, pager);     // Ch4: R-tree + signatures

  // 4. "select top 5 * from R where A0 = a and A1 = b
  //     order by N0 + 2*N1"
  TopKQuery query;
  query.predicates = {{0, table.sel(42, 0)}, {1, table.sel(42, 1)}};
  query.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 2.0});
  query.k = 5;
  std::printf("query: %s\n\n", query.ToString().c_str());

  auto show = [&](const char* name, const std::vector<ScoredTuple>& result,
                  const ExecStats& stats) {
    std::printf("%-16s", name);
    for (const auto& r : result) std::printf(" (t%u, %.4f)", r.tid, r.score);
    std::printf("\n  %-14s %.3f ms, %llu pages, %llu tuples evaluated\n",
                "", stats.time_ms,
                static_cast<unsigned long long>(stats.pages_read),
                static_cast<unsigned long long>(stats.tuples_evaluated));
  };

  ExecStats s1, s2, s3;
  auto r1 = grid_cube.TopK(query, &pager, &s1);
  auto r2 = signature_cube.TopK(query, &pager, &s2);
  auto r3 = TableScanTopK(table, query, &pager, &s3);
  if (!r1.ok() || !r2.ok()) {
    std::printf("error: %s %s\n", r1.status().ToString().c_str(),
                r2.status().ToString().c_str());
    return 1;
  }
  show("grid cube", *r1, s1);
  show("signature cube", *r2, s2);
  show("table scan", r3, s3);
  std::printf("\nAll three agree; the cubes touch a tiny fraction of the "
              "data the scan reads.\n");
  return 0;
}
